// Ablation: Allreduce algorithm vs. interference sensitivity.
//
// The paper's DL/CosmoFlow workloads use SST's binary-tree Allreduce (§IV).
// Distributed-training systems in production use ring allreduce (Horovod
// [35]) or halving-doubling instead. The algorithm changes the workload's
// peak ingress volume and round structure without changing its total
// volume, so it shifts where the workload sits on the paper's two intensity
// axes — this bench quantifies how each algorithm behaves standalone and
// under Halo3D interference, for PAR and Q-adaptive routing.

#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"
#include "mpi/coll.hpp"
#include "viz/ascii.hpp"
#include "workloads/motifs.hpp"

namespace {

using namespace dfly;
using mpi::coll::AllreduceAlg;

struct Cell {
  double comm_ms{0};
  double peak_mb{0};
};

Cell run_dl(const StudyConfig& config, AllreduceAlg alg, bool interfered) {
  Study study(config);
  const int half = config.topo.num_nodes() / 2;
  workloads::AllreducePeriodicParams params = workloads::AllreducePeriodicMotif::dl();
  params.iterations = workloads::scaled(params.iterations, config.scale, params.min_iterations);
  params.algorithm = alg;
  const int dl = study.add_motif(
      std::make_unique<workloads::AllreducePeriodicMotif>(std::move(params)), half, "DL");
  if (interfered) study.add_app("Halo3D", half);
  const Report report = study.run();
  Cell cell;
  cell.comm_ms = report.apps[static_cast<std::size_t>(dl)].comm_mean_ms;
  cell.peak_mb = report.apps[static_cast<std::size_t>(dl)].peak_ingress_bytes / 1e6;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::Options::parse(argc, argv, 48);
  bench::print_header(
      "ABLATION: Allreduce algorithm (DL workload, standalone vs +Halo3D)");
  std::printf("Rounds on n ranks: tree=2log2(n), ring=2(n-1), rdouble=log2(n), "
              "rabenseifner=2log2(n); bandwidth-optimal: ring, rabenseifner.\n\n");

  const std::vector<AllreduceAlg> algorithms{
      AllreduceAlg::kBinaryTree, AllreduceAlg::kRing, AllreduceAlg::kRecursiveDoubling,
      AllreduceAlg::kHalvingDoubling};
  const std::vector<std::string> routings{"PAR", "Q-adp"};

  std::vector<std::function<Cell()>> tasks;
  for (const std::string& routing : routings) {
    for (const AllreduceAlg alg : algorithms) {
      for (const bool interfered : {false, true}) {
        StudyConfig config = options.config(routing);
        tasks.push_back([config, alg, interfered] { return run_dl(config, alg, interfered); });
      }
    }
  }
  const std::vector<Cell> cells = bench::parallel_map(tasks);

  viz::AsciiTable table({"routing", "algorithm", "alone_ms", "vs_halo3d_ms", "slowdown",
                         "peak_ingress_mb"});
  std::size_t i = 0;
  for (const std::string& routing : routings) {
    for (const AllreduceAlg alg : algorithms) {
      const Cell alone = cells[i++];
      const Cell mixed = cells[i++];
      table.row({routing, mpi::coll::to_string(alg), bench::fmt(alone.comm_ms),
                 bench::fmt(mixed.comm_ms),
                 bench::fmt(alone.comm_ms > 0 ? mixed.comm_ms / alone.comm_ms : 0),
                 bench::fmt(alone.peak_mb)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Expected: ring/rabenseifner smooth injection into per-chunk rounds\n"
              "(smaller peak ingress, §IV) and absorb interference differently from\n"
              "tree's fan-out bursts; Q-adp narrows every gap vs PAR.\n");
  return 0;
}

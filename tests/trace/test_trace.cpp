// Tests for the trace record/replay subsystem (trace/trace.hpp).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "core/arena.hpp"
#include "core/json_report.hpp"
#include "core/study.hpp"
#include "trace/trace.hpp"
#include "workloads/motifs.hpp"
#include "workloads/synthetic.hpp"

namespace dfly {
namespace {

using trace::MessageRecord;
using trace::MessageTrace;
using trace::ReplayMotif;
using trace::ReplayParams;

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(MessageTrace, RecordsDirectAdds) {
  MessageTrace trace;
  trace.add({100, 0, 1, 512, 7});
  trace.add({200, 1, 0, 1024, 7});
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.num_ranks(), 2);
  EXPECT_EQ(trace.rank_records(0).size(), 1u);
  EXPECT_EQ(trace.rank_records(1).front().bytes, 1024);
}

TEST(MessageTrace, SummaryComputesIntensityMetrics) {
  MessageTrace trace;
  // Rank 0 posts a 3-message burst at t=0..2ns, then one more after 10us.
  trace.add({0 * kNs, 0, 1, 1000, 0});
  trace.add({1 * kNs, 0, 2, 1000, 0});
  trace.add({2 * kNs, 0, 3, 1000, 0});
  trace.add({12 * kUs, 0, 1, 500, 0});
  const trace::TraceSummary s = trace.summary(/*burst_gap=*/1 * kUs);
  EXPECT_EQ(s.messages, 4u);
  EXPECT_EQ(s.total_bytes, 3500);
  EXPECT_EQ(s.largest_message, 1000);
  EXPECT_EQ(s.peak_ingress_bytes, 3000);  // the burst, not the total
  EXPECT_EQ(s.num_ranks, 1);
  EXPECT_GT(s.injection_rate_gbs, 0.0);
}

TEST(MessageTrace, EmptySummaryIsZero) {
  const trace::TraceSummary s = MessageTrace{}.summary();
  EXPECT_EQ(s.messages, 0u);
  EXPECT_EQ(s.total_bytes, 0);
  EXPECT_EQ(s.num_ranks, 0);
}

TEST(MessageTrace, CsvRoundTrip) {
  MessageTrace trace;
  trace.add({123456789, 3, 9, 65536, 42});
  trace.add({223456789, 9, 3, 8, -1});
  const std::string path = temp_path("trace_roundtrip.csv");
  trace.save_csv(path);
  const MessageTrace loaded = MessageTrace::load_csv(path);
  ASSERT_EQ(loaded.size(), trace.size());
  EXPECT_EQ(loaded.records()[0], trace.records()[0]);
  EXPECT_EQ(loaded.records()[1], trace.records()[1]);
  std::remove(path.c_str());
}

TEST(MessageTrace, LoadMissingFileThrows) {
  EXPECT_THROW(MessageTrace::load_csv("/nonexistent/zzz.csv"), std::runtime_error);
}

/// Record a shift pattern through the Study hook.
MessageTrace record_shift(int ranks, int iterations) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "PAR";
  config.seed = 31;
  Study study(std::move(config));
  workloads::ShiftParams p;
  p.stride = 3;
  p.iterations = iterations;
  const int id = study.add_motif(std::make_unique<workloads::ShiftMotif>(p), ranks, "S");
  study.record_trace(id);
  const Report report = study.run();
  EXPECT_TRUE(report.completed);
  return study.trace(id);  // copy
}

TEST(StudyTracing, CapturesEveryApplicationSend) {
  const MessageTrace trace = record_shift(16, 40);
  EXPECT_EQ(trace.size(), 16u * 40u);
  EXPECT_EQ(trace.num_ranks(), 16);
  const trace::TraceSummary s = trace.summary();
  EXPECT_EQ(s.total_bytes, 16 * 40 * 4096);
}

TEST(StudyTracing, UntracedAppThrows) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  Study study(std::move(config));
  workloads::ShiftParams p;
  const int id = study.add_motif(std::make_unique<workloads::ShiftMotif>(p), 8, "S");
  (void)study.run();
  EXPECT_THROW(study.trace(id), std::out_of_range);
}

TEST(StudyTracing, CollectiveSendsAreRecorded) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  Study study(std::move(config));
  workloads::AllreducePeriodicParams p = workloads::AllreducePeriodicMotif::cosmoflow();
  p.iterations = 1;
  p.msg_bytes = 10000;
  p.interval = 10 * kUs;
  const int id = study.add_motif(
      std::make_unique<workloads::AllreducePeriodicMotif>(std::move(p)), 8, "CF");
  study.record_trace(id);
  (void)study.run();
  // Binary-tree allreduce on 8 ranks: 7 up + 7 down payload sends.
  EXPECT_EQ(study.trace(id).size(), 14u);
}

TEST(Replay, ReproducesTrafficVolume) {
  const MessageTrace trace = record_shift(12, 30);
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "PAR";
  config.seed = 99;
  Study study(std::move(config));
  auto motif = std::make_unique<ReplayMotif>(trace);
  ASSERT_EQ(motif->required_ranks(), 12);
  study.add_motif(std::move(motif), 12, "Replay");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(study.job(0).total_messages_sent(), 12 * 30);
  EXPECT_EQ(study.job(0).total_bytes_sent(), 12 * 30 * 4096);
}

TEST(Replay, PreserveTimingMatchesRecordedPace) {
  const MessageTrace original = record_shift(10, 25);
  const trace::TraceSummary s0 = original.summary();

  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "PAR";
  config.seed = 7;
  Study study(std::move(config));
  const int id = study.add_motif(std::make_unique<ReplayMotif>(original), 10, "Replay");
  study.record_trace(id);
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  const trace::TraceSummary s1 = study.trace(id).summary();
  EXPECT_EQ(s1.messages, s0.messages);
  // Post-time span of the replay should track the original within the
  // window-drain slack (the replayer never posts *earlier* than recorded).
  EXPECT_GE(s1.duration_ms, s0.duration_ms * 0.9);
  EXPECT_LE(s1.duration_ms, s0.duration_ms * 1.5 + 0.1);
}

TEST(Replay, SpeedCompressesSchedule) {
  const MessageTrace original = record_shift(10, 25);
  auto run_replay = [&original](double speed) {
    StudyConfig config;
    config.topo = DragonflyParams::tiny();
    config.routing = "PAR";
    Study study(std::move(config));
    ReplayParams rp;
    rp.speed = speed;
    study.add_motif(std::make_unique<ReplayMotif>(original, rp), 10, "Replay");
    const Report report = study.run();
    EXPECT_TRUE(report.completed);
    return report.makespan;
  };
  EXPECT_LT(run_replay(4.0), run_replay(1.0));
}

TEST(Replay, AsFastAsPossibleDropsGaps) {
  const MessageTrace original = record_shift(10, 25);
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "PAR";
  Study study(std::move(config));
  ReplayParams rp;
  rp.preserve_timing = false;
  study.add_motif(std::make_unique<ReplayMotif>(original, rp), 10, "Replay");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  EXPECT_LT(to_ms(report.makespan), original.summary().duration_ms);
}

TEST(Replay, InvalidSpeedThrows) {
  EXPECT_THROW(ReplayMotif(MessageTrace{}, ReplayParams{true, 0.0, 64}),
               std::invalid_argument);
}

TEST(MessageTrace, RankRecordsOfAbsentRankIsEmpty) {
  MessageTrace trace;
  trace.add({100, 0, 1, 512, 7});
  EXPECT_TRUE(trace.rank_records(5).empty());
  EXPECT_TRUE(trace.rank_records(-1).empty());
}

TEST(MessageTrace, SummaryWithZeroBurstGapCountsSingleMessages) {
  MessageTrace trace;
  trace.add({0, 0, 1, 1000, 0});
  trace.add({1, 0, 2, 2000, 0});  // 1 ps later: outside a zero gap
  const trace::TraceSummary s = trace.summary(/*burst_gap=*/0);
  EXPECT_EQ(s.peak_ingress_bytes, 2000);
}

TEST(MessageTrace, LoadCsvSkipsShortAndBlankLines) {
  const std::string path = temp_path("trace_partial.csv");
  {
    std::ofstream out(path);
    out << "when_ps,src_rank,dst_rank,bytes,tag\n";
    out << "100,0,1,512,7\n";
    out << "\n";               // blank: skipped
    out << "200,1\n";          // truncated: skipped
    out << "300,1,0,1024,9\n";
  }
  const MessageTrace loaded = MessageTrace::load_csv(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.records()[0].bytes, 512);
  EXPECT_EQ(loaded.records()[1].when, 300);
  std::remove(path.c_str());
}

TEST(MessageTrace, SaveCsvUnwritablePathThrows) {
  MessageTrace trace;
  trace.add({1, 0, 1, 8, 0});
  EXPECT_THROW(trace.save_csv("/nonexistent-dir/zzz/trace.csv"), std::runtime_error);
}

TEST(Replay, WindowOfOneStillCompletes) {
  const MessageTrace original = record_shift(8, 10);
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  Study study(std::move(config));
  ReplayParams rp;
  rp.window = 1;  // fully serialised posts per rank
  study.add_motif(std::make_unique<ReplayMotif>(original, rp), 8, "Replay");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(study.job(0).total_messages_sent(), 8 * 10);
}

TEST(Replay, EmptyTraceCompletesImmediately) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  Study study(std::move(config));
  auto motif = std::make_unique<ReplayMotif>(MessageTrace{});
  EXPECT_EQ(motif->required_ranks(), 0);
  study.add_motif(std::move(motif), 4, "Replay");
  const Report report = study.run();
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(study.job(0).total_messages_sent(), 0);
}

// Trace replay is itself a per-run allocator (per-rank record buckets,
// windows); replaying the same trace through one worker arena twice must be
// indistinguishable from fresh runs — both the reports and the re-recorded
// traces.
TEST(Replay, ArenaReuseIsByteIdenticalToFreshReplay) {
  const MessageTrace original = record_shift(10, 20);
  auto run_replay = [&original](SimArena* arena) {
    StudyConfig config;
    config.topo = DragonflyParams::tiny();
    config.routing = "PAR";
    config.seed = 17;
    Study study(std::move(config), arena);
    const int id = study.add_motif(std::make_unique<ReplayMotif>(original), 10, "Replay");
    study.record_trace(id);
    const Report report = study.run();
    return std::make_pair(report_to_json(report), study.trace(id).records());
  };
  SimArena arena;
  const auto first = run_replay(&arena);
  const auto second = run_replay(&arena);   // reused storage
  const auto fresh = run_replay(nullptr);   // no arena at all
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.first, fresh.first);
  EXPECT_EQ(first.second, second.second);
  EXPECT_EQ(first.second, fresh.second);
}

TEST(Replay, OutOfRangeDestinationsAreSkipped) {
  MessageTrace trace;
  trace.add({0, 0, 5, 100, 0});   // dst beyond the replay job size
  trace.add({0, 0, 1, 100, 0});
  trace.add({0, 1, 1, 100, 0});   // self-send in replay ranks: skipped
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  Study study(std::move(config));
  study.add_motif(std::make_unique<ReplayMotif>(trace), 2, "Replay");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(study.job(0).total_messages_sent(), 1);
}

}  // namespace
}  // namespace dfly

#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "topo/dragonfly.hpp"

namespace dfly {

/// A fully resolved router-level path (sequence of router ids, src first,
/// destination router last). Used by tests and by path-diversity analysis;
/// the routers themselves make hop-by-hop decisions at run time.
using RouterPath = std::vector<int>;

/// Precomputed minimal-path structure over one Dragonfly, shared read-only by
/// every cell of the same shape (it lives inside the SystemBlueprint). Holds
/// the per-router-pair minimal hop count and the per-group-pair minimal path
/// diversity, so repeated PathOracle queries cost one table read instead of a
/// gateway scan. Building the plan is pure topology arithmetic; a PathOracle
/// with and without a plan answers identically.
struct PathPlan {
  int num_routers{0};
  int num_groups{0};
  /// minimal_hops[src * num_routers + dst], in [0, 3].
  std::vector<std::uint8_t> min_hops;
  /// Number of distinct minimal paths between groups:
  /// group_paths[src_group * num_groups + dst_group] (1 on the diagonal).
  std::vector<std::int32_t> group_paths;

  static PathPlan build(const Dragonfly& topo);
};

/// Static path helpers over a Dragonfly. All functions are pure with respect
/// to the topology; randomised variants draw from the caller's Rng so that
/// runs stay reproducible. When a PathPlan is supplied (the blueprint-shared
/// fast path), hop counts and diversity come from the precomputed tables;
/// results are identical either way.
class PathOracle {
 public:
  explicit PathOracle(const Dragonfly& topo, const PathPlan* plan = nullptr)
      : topo_(&topo), plan_(plan) {}

  /// Minimal path between two routers: <= 3 hops (local, global, local).
  /// When several gateway routers exist, `rng` picks among them uniformly;
  /// pass nullptr to always take the first gateway (deterministic).
  RouterPath minimal(int src_router, int dst_router, Rng* rng = nullptr) const;

  /// Valiant path through intermediate group `int_group` (must differ from
  /// both endpoint groups unless equal to one of them, in which case this
  /// degenerates to minimal). Visits `int_router` in the intermediate group
  /// when >= 0 (UGALn/PAR style), otherwise routes through the landing
  /// gateway only (UGALg style).
  RouterPath valiant(int src_router, int dst_router, int int_group,
                     int int_router = -1, Rng* rng = nullptr) const;

  /// Number of minimal router paths between two routers (path diversity).
  int count_minimal(int src_router, int dst_router) const;

  /// Hop count of the minimal path (0 if same router).
  int minimal_hops(int src_router, int dst_router) const;

 private:
  /// Append the minimal hops from `from` to `to` onto `path` (not including
  /// `from`, which must already be the last element).
  void append_minimal(RouterPath& path, int to, Rng* rng) const;

  const Dragonfly* topo_;
  const PathPlan* plan_;
};

}  // namespace dfly

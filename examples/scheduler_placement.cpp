// Scheduler-level placement trade-off: isolation vs fragmentation.
//
//   $ ./scheduler_placement [jobs]          (default: 250)
//
// The paper's §I argues that contiguous placement — the classic fix for
// workload interference — is impractical because it fragments the machine.
// This example schedules the same synthetic job stream onto the paper's
// 1,056-node system under all three allocation policies and prints both
// sides of the trade: interference exposure (jobs sharing groups) versus
// queueing cost (wait time, fragmentation blocking, utilisation).

#include <cstdio>
#include <cstdlib>

#include "sched/scheduler.hpp"

int main(int argc, char** argv) {
  const int count = argc > 1 ? std::atoi(argv[1]) : 250;

  const dfly::Dragonfly topo(dfly::DragonflyParams::paper());
  const auto jobs = dfly::sched::synthetic_job_stream(count, /*mean_interarrival_ms=*/8.0,
                                                      /*mean_runtime_ms=*/40.0,
                                                      /*min_nodes=*/8, /*max_nodes=*/1056,
                                                      /*seed=*/42);

  std::printf("FCFS over %d jobs on %d nodes\n\n", count, topo.num_nodes());
  std::printf("%-12s %12s %12s %8s %12s %14s\n", "policy", "mean wait", "p95 wait", "util",
              "frag block", "mean sharers");
  for (const auto policy :
       {dfly::sched::AllocPolicy::kRandom, dfly::sched::AllocPolicy::kLinear,
        dfly::sched::AllocPolicy::kGroupContiguous}) {
    dfly::sched::BatchScheduler scheduler(topo, policy, /*backfill=*/false, /*seed=*/42);
    const dfly::sched::ScheduleResult result = scheduler.run(jobs);
    std::printf("%-12s %10.1fms %10.1fms %8.2f %10.1fms %14.2f\n",
                dfly::sched::to_string(policy), result.mean_wait_ms, result.p95_wait_ms,
                result.utilization, result.frag_blocked_ms, result.mean_sharers);
  }
  std::puts("\ncontiguous buys zero group-sharing (no interference) but pays in");
  std::puts("wait time and fragmentation — the trade the paper resolves with");
  std::puts("intelligent routing instead of placement.");
  return 0;
}

// End-to-end smoke test for the dflysim CLI: drives the real binary (path
// injected by CMake as DFSIM_CLI_PATH) on a quickstart-equivalent run and
// checks the exit status plus the JSON report's key surface.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#ifndef DFSIM_CLI_PATH
#error "DFSIM_CLI_PATH must be defined to the dflysim binary path"
#endif

int run_cli(const std::string& args, const std::string& env = "") {
  const std::string command =
      (env.empty() ? std::string() : "env " + env + " ") + DFSIM_CLI_PATH + " " + args;
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_json_path() {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/dfsim_cli_smoke.json";
}

TEST(CliSmoke, HelpAndListingsExitZero) {
  EXPECT_EQ(run_cli("--help > /dev/null 2>&1"), 0);
  EXPECT_EQ(run_cli("--list-apps > /dev/null 2>&1"), 0);
  EXPECT_EQ(run_cli("--list-routings > /dev/null 2>&1"), 0);
  EXPECT_EQ(run_cli("--list-placements > /dev/null 2>&1"), 0);
}

TEST(CliSmoke, ListPlacementsPrintsEveryPolicy) {
  const std::string out_path = temp_json_path() + ".placements";
  EXPECT_EQ(run_cli("--list-placements > " + out_path + " 2>/dev/null"), 0);
  const std::string out = slurp(out_path);
  EXPECT_EQ(out, "random\ncontiguous\nlinear\n");
  std::remove(out_path.c_str());
}

TEST(CliSmoke, BadUsageExitsNonZero) {
  EXPECT_NE(run_cli("> /dev/null 2>&1"), 0);                   // no --app
  EXPECT_NE(run_cli("--no-such-flag > /dev/null 2>&1"), 0);
  // Campaign-only flags are rejected without --plan...
  EXPECT_NE(run_cli("--app=UR:16 --set=seed=1 > /dev/null 2>&1"), 0);
  EXPECT_NE(run_cli("--app=UR:16 --jsonl=x.jsonl > /dev/null 2>&1"), 0);
  // ...and single-run flags are rejected (not silently dropped) with --plan.
  EXPECT_NE(run_cli("--plan=nonexistent.cfg --routing=MIN > /dev/null 2>&1"), 0);
  EXPECT_NE(run_cli("--plan=nonexistent.cfg --seed=7 > /dev/null 2>&1"), 0);
  EXPECT_NE(run_cli("--plan=nonexistent.cfg --app=UR:16 > /dev/null 2>&1"), 0);
}

TEST(CliSmoke, UnknownAppFailsFastWithOneCleanLine) {
  const std::string err_path = temp_json_path() + ".stderr";
  // Must be rejected at argument-parse time (exit 1), before any network is
  // built — a huge machine would make a late failure obvious by its runtime.
  EXPECT_EQ(run_cli("--app=NoSuchApp:16 --scale=64 > /dev/null 2> " + err_path), 1);
  const std::string err = slurp(err_path);
  EXPECT_NE(err.find("unknown application 'NoSuchApp'"), std::string::npos) << err;
  EXPECT_NE(err.find("--list-apps"), std::string::npos) << err;
  EXPECT_EQ(std::count(err.begin(), err.end(), '\n'), 1) << err;  // one line
  std::remove(err_path.c_str());
}

TEST(CliSmoke, QuickstartRunWritesJsonReport) {
  const std::string json_path = temp_json_path();
  std::remove(json_path.c_str());

  // Quickstart-equivalent: FFT3D on half the paper machine, Q-adaptive
  // routing, iteration counts shrunk for a fast smoke run.
  const int exit_code = run_cli("--app=FFT3D:528 --routing=Q-adp --scale=32 --seed=1 --json=" +
                                json_path + " > /dev/null 2>&1");
  EXPECT_EQ(exit_code, 0);

  const std::string json = slurp(json_path);
  ASSERT_FALSE(json.empty()) << "CLI did not write " << json_path;
  for (const char* key :
       {"\"routing\"", "\"completed\"", "\"makespan_ms\"", "\"sys_lat_p99_us\"",
        "\"agg_throughput_gb_per_ms\"", "\"events_executed\"", "\"apps\"", "\"app\"",
        "\"comm_mean_ms\"", "\"lat_p99_us\"", "\"nonminimal_fraction\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing key " << key;
  }
  EXPECT_NE(json.find("\"completed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"routing\":\"Q-adp\""), std::string::npos);
  std::remove(json_path.c_str());
}

TEST(CliSmoke, PlanRunStreamsJsonlAndHonoursSetOverrides) {
  const char* dir = std::getenv("TMPDIR");
  const std::string base = std::string(dir != nullptr ? dir : "/tmp");
  const std::string plan_path = base + "/dfsim_cli_smoke_plan.cfg";
  const std::string jsonl_path = base + "/dfsim_cli_smoke_plan.jsonl";
  const std::string csv_path = base + "/dfsim_cli_smoke_plan.csv";
  {
    std::ofstream out(plan_path);
    out << "topo.p = 2\ntopo.a = 4\ntopo.h = 2\ntopo.g = 9\nscale = 64\n"
           "plan.mode = single\nplan.jobs = UR:32\nplan.routings = MIN,UGALg\n"
           "plan.seeds = 42..43\n";
  }
  std::remove(jsonl_path.c_str());

  // 2 routings x 2 seeds = 4 cells; --set trims the seeds axis to one.
  const int exit_code = run_cli("--plan=" + plan_path + " --set=plan.seeds=42 --jobs=2" +
                                " --jsonl=" + jsonl_path + " --plan-csv=" + csv_path +
                                " > /dev/null 2>&1");
  EXPECT_EQ(exit_code, 0);
  const std::string jsonl = slurp(jsonl_path);
  ASSERT_FALSE(jsonl.empty()) << "CLI did not write " << jsonl_path;
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);  // one line per cell
  for (const char* key : {"\"cell\":0", "\"cell\":1", "\"kind\":\"single\"",
                          "\"routing\":\"MIN\"", "\"routing\":\"UGALg\"", "\"seed\":42",
                          "\"report\":{", "\"completed\":true"}) {
    EXPECT_NE(jsonl.find(key), std::string::npos) << "missing " << key;
  }
  const std::string csv = slurp(csv_path);
  EXPECT_EQ(csv.rfind("cell,kind,variant,routing,placement", 0), 0u);

  // An unknown application inside the plan must also fail before simulating.
  {
    std::ofstream out(plan_path);
    out << "plan.mode = single\nplan.jobs = Bogus:16\n";
  }
  EXPECT_NE(run_cli("--plan=" + plan_path + " > /dev/null 2>&1"), 0);

  std::remove(plan_path.c_str());
  std::remove(jsonl_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(CliSmoke, MalformedDfsimJobsEnvFailsLoudly) {
  const std::string err_path = temp_json_path() + ".jobs_stderr";
  // DFSIM_JOBS=4x used to silently run 4 workers; abc silently ran 1. Both
  // must now be one clean fatal line and exit 1.
  EXPECT_EQ(run_cli("--app=UR:16 --scale=64 --sweep=2 > /dev/null 2> " + err_path,
                    "DFSIM_JOBS=4x"),
            1);
  const std::string err = slurp(err_path);
  EXPECT_NE(err.find("DFSIM_JOBS must be a positive integer, got '4x'"), std::string::npos)
      << err;
  EXPECT_EQ(run_cli("--app=UR:16 --scale=64 --sweep=2 > /dev/null 2>&1", "DFSIM_JOBS=abc"), 1);
  // An explicit --jobs never consults the env, so it still runs.
  EXPECT_EQ(run_cli("--app=UR:64 --routing=MIN --scale=64 --sweep=2 --jobs=2 "
                    "> /dev/null 2>&1",
                    "DFSIM_JOBS=abc"),
            0);
  std::remove(err_path.c_str());
}

TEST(CliSmoke, PlanJobsWithNonPositiveNodesIsRejectedAtTheOffendingLine) {
  const char* dir = std::getenv("TMPDIR");
  const std::string base = std::string(dir != nullptr ? dir : "/tmp");
  const std::string plan_path = base + "/dfsim_cli_smoke_badnodes.cfg";
  const std::string err_path = temp_json_path() + ".nodes_stderr";
  {
    std::ofstream out(plan_path);
    out << "plan.mode = single\nplan.jobs = UR:0\n";
  }
  EXPECT_EQ(run_cli("--plan=" + plan_path + " > /dev/null 2> " + err_path), 1);
  const std::string err = slurp(err_path);
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find(">= 1"), std::string::npos) << err;
  std::remove(plan_path.c_str());
  std::remove(err_path.c_str());
}

TEST(CliSmoke, CampaignPipedIntoHeadRecordsSinkFailuresInsteadOfDyingOfSigpipe) {
  const char* dir = std::getenv("TMPDIR");
  const std::string base = std::string(dir != nullptr ? dir : "/tmp");
  const std::string plan_path = base + "/dfsim_cli_smoke_pipe.cfg";
  const std::string status_path = base + "/dfsim_cli_smoke_pipe.status";
  {
    std::ofstream out(plan_path);
    out << "topo.p = 2\ntopo.a = 4\ntopo.h = 2\ntopo.g = 9\nscale = 64\n"
           "plan.mode = single\nplan.jobs = UR:32\nplan.routings = MIN,UGALg\n"
           "plan.seeds = 42..43\n";
  }
  std::remove(status_path.c_str());
  // `head -n 1` closes the pipe after the first cell line; the remaining
  // cells hit EPIPE. Pre-fix the whole process died of SIGPIPE (no exit
  // status at all); now the broken sink is recorded per cell and the run
  // finishes with exit 2, like any campaign with failures.
  const std::string command = std::string("( ") + DFSIM_CLI_PATH + " --plan=" + plan_path +
                              " --jsonl=- 2>/dev/null; echo $? > " + status_path +
                              " ) | head -n 1 > /dev/null";
  std::system(command.c_str());
  const std::string status = slurp(status_path);
  EXPECT_EQ(status, "2\n") << "campaign into head should exit 2, got: " << status;
  std::remove(plan_path.c_str());
  std::remove(status_path.c_str());
}

TEST(CliSmoke, JsonToStdout) {
  const std::string json_path = temp_json_path() + ".stdout";
  const int exit_code = run_cli("--app=UR:64 --routing=MIN --scale=64 --json=- > " + json_path +
                                " 2>/dev/null");
  EXPECT_EQ(exit_code, 0);
  const std::string out = slurp(json_path);
  EXPECT_NE(out.find("\"routing\""), std::string::npos);
  EXPECT_NE(out.find("\"apps\""), std::string::npos);
  std::remove(json_path.c_str());
}

}  // namespace

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/time.hpp"

namespace dfly {

/// Route phases of the constrained Dragonfly path DFA. Every admissible path
/// is a prefix-respecting walk of (local?, global, local?, global, local?),
/// which all routing algorithms in this suite obey; the phase plus hop count
/// determines the legal candidate ports at each router.
enum class RoutePhase : std::uint8_t {
  kAtSource = 0,      ///< at the injection router, no hops taken
  kSrcLocalDone = 1,  ///< took a local hop in the source group; must go global
  kMidGroup = 2,      ///< landed in a non-destination group after a global hop
  kMidLocalDone = 3,  ///< took the intermediate group's local hop; must go global
  kDstGroup = 4,      ///< inside the destination group
};

/// In-flight packet. Kept POD-small; packets are pool-allocated and recycled
/// so the hot path never touches the general-purpose allocator.
struct Packet {
  SimTime enter_router_time{0};  ///< arrival time at the current router (Q feedback)
  SimTime wire_time{0};          ///< when the first flit left the source NIC
  std::uint64_t msg_id{0};
  std::uint32_t id{0};  ///< pool slot
  std::int32_t src_node{0};
  std::int32_t dst_node{0};
  std::int32_t bytes{0};  ///< payload carried by this packet
  std::int16_t app_id{0};
  std::int16_t int_group{-1};   ///< Valiant intermediate group, -1 = none
  std::int16_t int_router{-1};  ///< Valiant intermediate router, -1 = none
  std::int16_t prev_router{-1};
  std::int16_t prev_port{-1};
  std::int16_t out_port{-1};
  std::int16_t out_vc{0};
  std::uint8_t hops{0};
  std::uint8_t traffic_class{0};  ///< QoS class (net/qos.hpp), set at injection
  RoutePhase phase{RoutePhase::kAtSource};
  bool nonminimal{false};
  bool reached_int{false};   ///< passed the Valiant midpoint
  bool par_revisable{false}; ///< PAR may still divert this packet
  bool ecn{false};           ///< congestion-experienced mark (net/congestion_control.hpp)
};

/// Free-list pool with stable addresses (fixed-size chunks behind a
/// pre-allocated chunk directory).
///
/// Reuse: reset() returns every slot to the free list while keeping the
/// chunks, so a pool that has grown to one cell's peak in-flight depth serves
/// the next same-shape cell without touching the allocator (the arena reuse
/// path, core/arena.hpp). A reset pool hands out slot ids 0, 1, 2, ... exactly
/// like a fresh one, so reuse is invisible to the simulation.
///
/// Thread-safety: a PacketPool belongs to one Network and therefore to one
/// simulation cell. In a parallel cell (--cell-threads, src/sim/pdes.hpp)
/// the cell's domains share it: set_locking(true) serialises alloc/release
/// behind a mutex, while get() stays lock-free by construction — the chunk
/// directory is a fixed array allocated up front (so lookups never race a
/// growth reallocation), and a foreign domain only learns a packet id through
/// a cross-domain event delivered at a barrier, which happens-after the chunk
/// publication under the alloc mutex. Sequential cells leave locking off and
/// pay one predictable branch per alloc/release.
class PacketPool {
 public:
  /// 4096 packets per chunk; the directory holds up to 4096 chunk pointers
  /// (~16.7M concurrently-live packets, far beyond any cell's peak).
  static constexpr std::uint32_t kChunkShift = 12;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kMaxChunks = 4096;

  Packet& alloc() {
    const MaybeLock lock(locking_ ? mutex_.get() : nullptr);
    if (free_.empty()) {
      const std::uint32_t id = size_++;
      if ((id & (kChunkSize - 1)) == 0) grow_chunk(id >> kChunkShift);
      Packet& p = dir_[id >> kChunkShift][id & (kChunkSize - 1)];
      p.id = id;
      if (size_ > peak_in_use_) peak_in_use_ = size_;
      return p;
    }
    const std::uint32_t id = free_.back();
    free_.pop_back();
    Packet& p = dir_[id >> kChunkShift][id & (kChunkSize - 1)];
    p = Packet{};
    p.id = id;
    const std::size_t used = size_ - free_.size();
    if (used > peak_in_use_) peak_in_use_ = used;
    return p;
  }

  void release(const Packet& p) {
    const MaybeLock lock(locking_ ? mutex_.get() : nullptr);
    free_.push_back(p.id);
  }

  /// Return every slot to the free list, keeping the chunk storage. The free
  /// list is rebuilt descending so the next allocations draw ids 0, 1, 2, ...
  /// — byte-identical behaviour to a freshly-constructed pool. Zeroes the
  /// per-cell peak counter and turns locking back off.
  void reset() {
    free_.clear();
    free_.reserve(size_);
    for (std::size_t id = size_; id-- > 0;) {
      free_.push_back(static_cast<std::uint32_t>(id));
    }
    peak_in_use_ = 0;
    locking_ = false;
  }

  /// Grow the storage to at least `slots` packets. Only meaningful on an idle
  /// pool (nothing in flight); call right after reset().
  void reserve(std::size_t slots) {
    while (size_ < slots) {
      const std::uint32_t id = size_++;
      if ((id & (kChunkSize - 1)) == 0) grow_chunk(id >> kChunkShift);
      dir_[id >> kChunkShift][id & (kChunkSize - 1)].id = id;
    }
    reset();
  }

  /// Serialise alloc/release for a parallel cell. Enabled by Network when the
  /// cell runs domains on multiple threads; reset() disables it again.
  void set_locking(bool locking) {
    if (locking && mutex_ == nullptr) mutex_ = std::make_unique<std::mutex>();
    locking_ = locking;
  }

  Packet& get(std::uint32_t id) { return dir_[id >> kChunkShift][id & (kChunkSize - 1)]; }
  const Packet& get(std::uint32_t id) const {
    return dir_[id >> kChunkShift][id & (kChunkSize - 1)];
  }

  std::size_t capacity() const { return size_; }
  std::size_t in_use() const { return size_ - free_.size(); }
  /// High-water mark of simultaneously-allocated packets since construction
  /// or the last reset().
  std::size_t peak_in_use() const { return peak_in_use_; }

 private:
  /// Locks the pool mutex only when locking is enabled; the sequential path
  /// pays one branch.
  class MaybeLock {
   public:
    explicit MaybeLock(std::mutex* mutex) : mutex_(mutex) {
      if (mutex_ != nullptr) mutex_->lock();
    }
    ~MaybeLock() {
      if (mutex_ != nullptr) mutex_->unlock();
    }
    MaybeLock(const MaybeLock&) = delete;
    MaybeLock& operator=(const MaybeLock&) = delete;

   private:
    std::mutex* mutex_;
  };

  /// Publish a new chunk. The directory itself is allocated once, lazily, at
  /// its full fixed size, so get() never observes it mid-reallocation.
  void grow_chunk(std::uint32_t chunk) {
    if (dir_ == nullptr) dir_ = std::make_unique<std::unique_ptr<Packet[]>[]>(kMaxChunks);
    dir_[chunk] = std::make_unique<Packet[]>(kChunkSize);
  }

  std::unique_ptr<std::unique_ptr<Packet[]>[]> dir_;
  std::uint32_t size_{0};  ///< slots constructed across all chunks
  std::vector<std::uint32_t> free_;
  std::size_t peak_in_use_{0};
  std::unique_ptr<std::mutex> mutex_;  ///< created on first set_locking(true)
  bool locking_{false};
};

}  // namespace dfly

#pragma once

#include <cstdio>
#include <string_view>

namespace dfly {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Process-wide log verbosity; defaults to warnings only. The simulator's
/// hot paths never format messages unless the level is enabled.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void vlog(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
}  // namespace detail

#define DFLY_LOG_ERROR(...) ::dfly::detail::vlog(::dfly::LogLevel::kError, __VA_ARGS__)
#define DFLY_LOG_WARN(...)                                        \
  do {                                                            \
    if (::dfly::log_level() >= ::dfly::LogLevel::kWarn)           \
      ::dfly::detail::vlog(::dfly::LogLevel::kWarn, __VA_ARGS__); \
  } while (0)
#define DFLY_LOG_INFO(...)                                        \
  do {                                                            \
    if (::dfly::log_level() >= ::dfly::LogLevel::kInfo)           \
      ::dfly::detail::vlog(::dfly::LogLevel::kInfo, __VA_ARGS__); \
  } while (0)
#define DFLY_LOG_DEBUG(...)                                        \
  do {                                                             \
    if (::dfly::log_level() >= ::dfly::LogLevel::kDebug)           \
      ::dfly::detail::vlog(::dfly::LogLevel::kDebug, __VA_ARGS__); \
  } while (0)

}  // namespace dfly

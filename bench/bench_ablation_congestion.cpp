// Ablation: end-to-end congestion control vs. routing.
//
// §II-C's heaviest alternative: "when congestion happens, the message
// generation rate is throttled to drain the network" (Slingshot SC'20,
// McGlohon PMBS'21). We inject an incast aggressor next to a latency-bound
// ping-pong victim and measure both with ECN+AIMD on and off, under PAR and
// Q-adaptive. CC attacks endpoint congestion that routing cannot solve
// (every path ends at the same NIC), so the two mechanisms are
// complementary — which the table demonstrates.

#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"
#include "viz/ascii.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace dfly;

struct Outcome {
  double victim_ms{0};
  double aggressor_ms{0};
  double stall_ms{0};
};

Outcome run_case(StudyConfig config, bool cc_on) {
  config.net.cc.enabled = cc_on;
  Study study(std::move(config));
  const int nodes = study.topo().num_nodes();

  workloads::IncastParams incast;
  incast.fanin_targets = 4;
  incast.iterations = 4000 / study.config().scale;
  incast.msg_bytes = 4096;
  incast.interval = 0;
  const int aggressor =
      study.add_motif(std::make_unique<workloads::IncastMotif>(incast), nodes / 2, "Incast");

  workloads::PingPongParams pp;
  pp.iterations = 2000 / study.config().scale;
  pp.msg_bytes = 1024;
  const int victim =
      study.add_motif(std::make_unique<workloads::PingPongMotif>(pp), nodes / 4, "PingPong");

  const Report report = study.run();
  Outcome outcome;
  outcome.victim_ms = report.apps[static_cast<std::size_t>(victim)].comm_mean_ms;
  outcome.aggressor_ms = report.apps[static_cast<std::size_t>(aggressor)].comm_mean_ms;
  const auto& stats = study.network().link_stats();
  SimTime stall = 0;
  for (int link = 0; link < stats.num_links(); ++link) stall += stats.stall(link);
  outcome.stall_ms = to_ms(stall);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::Options::parse(argc, argv, 32);
  bench::print_header("ABLATION: ECN+AIMD congestion control (incast aggressor)");

  const std::vector<std::string> routings{"PAR", "Q-adp"};
  std::vector<std::function<Outcome()>> tasks;
  for (const std::string& routing : routings) {
    for (const bool cc_on : {false, true}) {
      StudyConfig config = options.config(routing);
      tasks.push_back([config, cc_on] { return run_case(config, cc_on); });
    }
  }
  const std::vector<Outcome> outcomes = bench::parallel_map(tasks);

  viz::AsciiTable table({"routing", "cc", "victim comm (ms)", "aggressor comm (ms)",
                         "total stall (ms)"});
  std::size_t i = 0;
  for (const std::string& routing : routings) {
    for (const bool cc_on : {false, true}) {
      const Outcome& o = outcomes[i++];
      table.row({routing, cc_on ? "on" : "off", bench::fmt(o.victim_ms),
                 bench::fmt(o.aggressor_ms), bench::fmt(o.stall_ms)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Expected: CC collapses in-network stall by pacing the incast sources\n"
              "(endpoint congestion is invisible to routing); the aggressor pays with\n"
              "longer completion. Routing still sets the baseline for path contention.\n");
  return 0;
}

#pragma once

#include <string>
#include <vector>

#include "viz/svg.hpp"

/// Chart builders for the paper's figure types. Each chart renders into a
/// standalone SVG (viz/svg.hpp). The benches use these to regenerate every
/// figure graphically in addition to their textual tables:
///
///  - LineChart            -> Figs 5, 9, 13(b) (throughput / latency vs time)
///  - GroupedBarChart      -> Figs 4, 8, 10 (comm time with error bars)
///  - Heatmap              -> Fig 12 (congestion-index matrix)
///  - RadialGroupPlot      -> Fig 11 (per-group stall circles + G0 edges)
///  - BoxPlot              -> Fig 6 (packet latency distribution)
namespace dfly::viz {

/// Multi-series XY chart with axes, ticks and a legend.
class LineChart {
 public:
  LineChart(std::string title, std::string x_label, std::string y_label);

  /// Add a named series; points need not be sorted.
  void add_series(const std::string& name, std::vector<std::pair<double, double>> points);
  void add_series(const std::string& name, const std::vector<double>& xs,
                  const std::vector<double>& ys);

  std::string render(double width = 640, double height = 400) const;
  void save(const std::string& path, double width = 640, double height = 400) const;

 private:
  struct Series {
    std::string name;
    std::vector<std::pair<double, double>> points;
  };
  std::string title_, x_label_, y_label_;
  std::vector<Series> series_;
};

/// Clustered bars with optional error whiskers (Fig 4/8/10 layout: one
/// cluster per category, one bar per group).
class GroupedBarChart {
 public:
  GroupedBarChart(std::string title, std::string y_label);

  /// Category labels along the x axis (e.g. routing algorithms).
  void set_categories(std::vector<std::string> categories);
  /// One bar group across every category (e.g. one background app), with
  /// optional symmetric error bars (stddev whiskers).
  void add_group(const std::string& name, std::vector<double> values,
                 std::vector<double> errors = {});

  std::string render(double width = 720, double height = 400) const;
  void save(const std::string& path, double width = 720, double height = 400) const;

 private:
  struct Group {
    std::string name;
    std::vector<double> values;
    std::vector<double> errors;
  };
  std::string title_, y_label_;
  std::vector<std::string> categories_;
  std::vector<Group> groups_;
};

/// Dense matrix heat map with a sequential colormap and colorbar (Fig 12).
class Heatmap {
 public:
  Heatmap(std::string title, std::string x_label, std::string y_label);

  /// Row-major matrix; rows render top-to-bottom in index order.
  void set_matrix(std::vector<std::vector<double>> rows);
  /// Clamp the color scale (default: data min/max).
  void set_range(double lo, double hi);

  std::string render(double width = 560, double height = 520) const;
  void save(const std::string& path, double width = 560, double height = 520) const;

 private:
  std::string title_, x_label_, y_label_;
  std::vector<std::vector<double>> rows_;
  double lo_{0}, hi_{0};
  bool has_range_{false};
};

/// The paper's Fig 11: groups arranged on a circle; each group's marker
/// radius encodes its local-link stall, and edges from a focal group encode
/// that group's global-link stall by darkness.
class RadialGroupPlot {
 public:
  explicit RadialGroupPlot(std::string title);

  /// Per-group scalar (e.g. intra-group stall ms); marker size scales with it.
  void set_group_values(std::vector<double> values);
  /// Edges from `focal_group` to every other group (e.g. global stall ms).
  void set_focal_edges(int focal_group, std::vector<double> values);

  std::string render(double size = 560) const;
  void save(const std::string& path, double size = 560) const;

 private:
  std::string title_;
  std::vector<double> group_values_;
  std::vector<double> edge_values_;
  int focal_group_{0};
};

/// Box-and-whisker plot with p95/p99 markers (Fig 6 layout).
class BoxPlot {
 public:
  BoxPlot(std::string title, std::string y_label);

  struct Stats {
    double q1{0}, median{0}, q3{0};
    double whisker_lo{0}, whisker_hi{0};
    double p95{0}, p99{0}, mean{0};
  };
  void add_box(const std::string& label, Stats stats);

  std::string render(double width = 560, double height = 420) const;
  void save(const std::string& path, double width = 560, double height = 420) const;

 private:
  std::string title_, y_label_;
  std::vector<std::pair<std::string, Stats>> boxes_;
};

}  // namespace dfly::viz

#include "net/buffer.hpp"

namespace dfly {

InputBuffers::InputBuffers(int num_ports, int num_vcs, int capacity)
    : num_ports_(num_ports),
      num_vcs_(num_vcs),
      capacity_(capacity),
      queues_(static_cast<std::size_t>(num_ports) * static_cast<std::size_t>(num_vcs)) {}

void InputBuffers::reset(int num_ports, int num_vcs, int capacity) {
  num_ports_ = num_ports;
  num_vcs_ = num_vcs;
  capacity_ = capacity;
  queues_.resize(static_cast<std::size_t>(num_ports) * static_cast<std::size_t>(num_vcs));
  for (auto& queue : queues_) queue.clear();
}

int InputBuffers::port_occupancy(int port) const {
  int total = 0;
  for (int vc = 0; vc < num_vcs_; ++vc) total += size(port, vc);
  return total;
}

int InputBuffers::total_occupancy() const {
  int total = 0;
  for (const auto& queue : queues_) total += static_cast<int>(queue.size());
  return total;
}

}  // namespace dfly

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "routing/factory.hpp"
#include "../support/make_blueprint.hpp"

namespace dfly {
namespace {

class CountingSink final : public MessageEvents {
 public:
  void message_sent(std::uint64_t) override { ++sent; }
  void message_delivered(std::uint64_t) override { ++delivered; }
  int sent{0};
  int delivered{0};
};

/// Every routing algorithm must deliver arbitrary traffic without loss or
/// deadlock on small and multi-link topologies.
class RoutingDelivery
    : public ::testing::TestWithParam<std::tuple<std::string, DragonflyParams>> {};

TEST_P(RoutingDelivery, RandomTrafficAllDelivered) {
  const auto& [name, params] = GetParam();
  Engine engine;
  const auto bp = testsupport::make_blueprint(params, {}, name);
  const Dragonfly& topo = bp->topo();
  const NetConfig& cfg = bp->net();
  routing::RoutingContext context{&engine, &topo, &cfg, 11};
  auto routing = routing::make_routing(name, context);
  NetworkObservability obs;
  obs.keep_packet_records = true;
  Network net(engine, *bp, *routing, 1, 11, obs);
  CountingSink sink;
  net.set_sink(sink);

  Rng rng(99);
  const int messages = 300;
  for (int i = 0; i < messages; ++i) {
    const int src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo.num_nodes())));
    int dst = src;
    while (dst == src) {
      dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo.num_nodes())));
    }
    net.send_message(src, dst, 1024 + static_cast<int>(rng.next_below(4096)), 0);
  }
  engine.run();
  EXPECT_EQ(sink.sent, messages);
  EXPECT_EQ(sink.delivered, messages);
  EXPECT_EQ(net.pool().in_use(), 0u);

  // Hop-count budget: no admissible path exceeds 7 router-to-router hops,
  // and the VC-per-hop discipline must never exceed the configured VCs.
  for (const auto& r : net.packet_log().records()) {
    EXPECT_LE(r.hops, 7);
    EXPECT_LT(r.hops, cfg.num_vcs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRoutings, RoutingDelivery,
    ::testing::Combine(::testing::Values("MIN", "VALg", "VALn", "UGALg", "UGALn", "PAR", "Q-adp"),
                       ::testing::Values(DragonflyParams::tiny(), DragonflyParams{2, 4, 2, 5})),
    [](const auto& info) {
      std::string routing = std::get<0>(info.param);
      for (auto& c : routing) {
        if (c == '-') c = '_';
      }
      return routing + "_g" + std::to_string(std::get<1>(info.param).g);
    });

TEST(Routing, MinimalNeverMisroutes) {
  Engine engine;
  const auto bp = testsupport::make_blueprint();
  const Dragonfly& topo = bp->topo();
  routing::RoutingContext context{&engine, &topo, &bp->net(), 1};
  auto routing = routing::make_routing("MIN", context);
  NetworkObservability obs;
  obs.keep_packet_records = true;
  Network net(engine, *bp, *routing, 1, 1, obs);
  CountingSink sink;
  net.set_sink(sink);
  for (int n = 1; n < topo.num_nodes(); ++n) net.send_message(0, n, 512, 0);
  engine.run();
  for (const auto& r : net.packet_log().records()) {
    EXPECT_FALSE(r.nonminimal);
    EXPECT_LE(r.hops, 3);
  }
}

TEST(Routing, ValiantAlwaysMisroutesInterGroup) {
  Engine engine;
  const auto bp = testsupport::make_blueprint();
  const Dragonfly& topo = bp->topo();
  routing::RoutingContext context{&engine, &topo, &bp->net(), 1};
  auto routing = routing::make_routing("VALg", context);
  NetworkObservability obs;
  obs.keep_packet_records = true;
  Network net(engine, *bp, *routing, 1, 1, obs);
  CountingSink sink;
  net.set_sink(sink);
  // All destinations in a different group than the source.
  const int src = 0;
  for (int g = 1; g < topo.num_groups(); ++g) {
    net.send_message(src, topo.node_id(topo.router_id(g, 0), 0), 512, 0);
  }
  engine.run();
  for (const auto& r : net.packet_log().records()) {
    EXPECT_TRUE(r.nonminimal);
    EXPECT_GE(r.hops, 2);
  }
}

TEST(Routing, UgalPrefersMinimalWhenIdle) {
  // On an idle network every queue is empty, so q_min <= 2*q_nonmin always
  // holds and UGAL must behave like minimal routing.
  Engine engine;
  const auto bp = testsupport::make_blueprint();
  const Dragonfly& topo = bp->topo();
  routing::RoutingContext context{&engine, &topo, &bp->net(), 1};
  auto routing = routing::make_routing("UGALg", context);
  NetworkObservability obs;
  obs.keep_packet_records = true;
  Network net(engine, *bp, *routing, 1, 1, obs);
  CountingSink sink;
  net.set_sink(sink);
  // One message at a time: run to quiescence between sends.
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const int src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo.num_nodes())));
    int dst = src;
    while (dst == src) {
      dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo.num_nodes())));
    }
    net.send_message(src, dst, 512, 0);
    engine.run();
  }
  for (const auto& r : net.packet_log().records()) {
    EXPECT_FALSE(r.nonminimal) << "UGAL misrouted on an idle network";
    EXPECT_LE(r.hops, 3);
  }
}

TEST(Routing, UgalDivertsUnderAdversarialLoad) {
  // Adversarial pattern: every node in group 0 blasts group 1. The single
  // global link between the groups saturates and UGAL must start taking
  // non-minimal paths.
  Engine engine;
  const auto bp = testsupport::make_blueprint();
  const Dragonfly& topo = bp->topo();
  routing::RoutingContext context{&engine, &topo, &bp->net(), 1};
  auto routing = routing::make_routing("UGALn", context);
  NetworkObservability obs;
  obs.keep_packet_records = true;
  Network net(engine, *bp, *routing, 1, 1, obs);
  CountingSink sink;
  net.set_sink(sink);
  const int nodes_per_group = topo.params().p * topo.params().a;
  for (int rep = 0; rep < 30; ++rep) {
    for (int n = 0; n < nodes_per_group; ++n) {
      net.send_message(n, nodes_per_group + n, 8192, 0);
    }
  }
  engine.run();
  std::uint64_t nonmin = net.packet_log().nonminimal_packets(0);
  EXPECT_GT(nonmin, 0u) << "UGAL never diverted under adversarial load";
  EXPECT_EQ(sink.delivered, 30 * nodes_per_group);
}

TEST(Routing, ParDivertsUnderAdversarialLoad) {
  Engine engine;
  const auto bp = testsupport::make_blueprint();
  const Dragonfly& topo = bp->topo();
  routing::RoutingContext context{&engine, &topo, &bp->net(), 1};
  auto routing = routing::make_routing("PAR", context);
  NetworkObservability obs;
  obs.keep_packet_records = true;
  Network net(engine, *bp, *routing, 1, 1, obs);
  CountingSink sink;
  net.set_sink(sink);
  const int nodes_per_group = topo.params().p * topo.params().a;
  for (int rep = 0; rep < 30; ++rep) {
    for (int n = 0; n < nodes_per_group; ++n) {
      net.send_message(n, nodes_per_group + n, 8192, 0);
    }
  }
  engine.run();
  EXPECT_GT(net.packet_log().nonminimal_packets(0), 0u);
  EXPECT_EQ(sink.delivered, 30 * nodes_per_group);
}

TEST(Routing, FactoryRejectsUnknownName) {
  Engine engine;
  Dragonfly topo(DragonflyParams::tiny());
  NetConfig cfg;
  routing::RoutingContext context{&engine, &topo, &cfg, 1};
  EXPECT_THROW(routing::make_routing("bogus", context), std::invalid_argument);
}

TEST(Routing, PaperListIsTheEvaluatedFour) {
  const auto& names = routing::paper_routings();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "UGALg");
  EXPECT_EQ(names[1], "UGALn");
  EXPECT_EQ(names[2], "PAR");
  EXPECT_EQ(names[3], "Q-adp");
}

}  // namespace
}  // namespace dfly

#include "mpi/job.hpp"

#include <cassert>

#include "core/arena.hpp"

namespace dfly::mpi {

Job::Job(Engine& engine, Network& network, MpiSystem& system, int app_id, std::string name,
         const Motif& motif, std::vector<int> nodes, std::uint64_t seed, ProtocolConfig protocol,
         SimArena* arena)
    : engine_(&engine),
      network_(&network),
      system_(&system),
      arena_(arena),
      app_id_(app_id),
      name_(std::move(name)),
      motif_(&motif),
      nodes_(std::move(nodes)),
      protocol_(protocol) {
  const int n = static_cast<int>(nodes_.size());
  if (arena_ != nullptr) {
    JobStorage storage = arena_->take_job_storage();
    ranks_ = std::move(storage.ranks);
    tasks_ = std::move(storage.tasks);
    inflight_ = std::move(storage.inflight);
    rendezvous_ = std::move(storage.rendezvous);
    // A previous larger cell may have parked more ranks than this one needs;
    // the extras are destroyed (shrinks are rare — capacity tracks the
    // worker's high-water shape, not every cell).
    if (static_cast<int>(ranks_.size()) > n) ranks_.resize(static_cast<std::size_t>(n));
  }
  const int recycled = static_cast<int>(ranks_.size());
  ranks_.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    Rng rng(seed, (static_cast<std::uint64_t>(app_id) << 32) | static_cast<std::uint64_t>(r));
    if (r < recycled) {
      ranks_[static_cast<std::size_t>(r)]->reinit(*this, r, nodes_[static_cast<std::size_t>(r)],
                                                  rng);
    } else {
      ranks_.push_back(
          std::make_unique<RankCtx>(*this, r, nodes_[static_cast<std::size_t>(r)], rng));
    }
    if (arena_ != nullptr) arena_->count_rank(r < recycled);
  }
}

Job::~Job() {
  if (arena_ == nullptr) return;
  // Park the backing storage for the next cell. Coroutine frames are
  // destroyed first (tasks reference the ranks); the maps are cleared but
  // keep their tables, and the RankCtx objects keep every container's
  // capacity — reinit() restores fresh observable state on reuse.
  JobStorage storage;
  tasks_.clear();
  inflight_.clear();
  rendezvous_.clear();
  storage.ranks = std::move(ranks_);
  storage.tasks = std::move(tasks_);
  storage.inflight = std::move(inflight_);
  storage.rendezvous = std::move(rendezvous_);
  arena_->return_job_storage(std::move(storage));
}

Task Job::drive(RankCtx& ctx) {
  co_await motif_->run(ctx);
  rank_finished(ctx);
}

void Job::start() {
  assert(tasks_.empty() && "job already started");
  start_time_ = engine_->now();
  tasks_.reserve(ranks_.size());
  for (auto& rank : ranks_) tasks_.push_back(drive(*rank));
  for (auto& task : tasks_) task.start();
}

void Job::rank_finished(RankCtx& ctx) {
  const auto lock = maybe_lock();
  ++finished_ranks_;
  // The finishing rank's own clock: in a parallel cell the job's primary
  // engine may be on another domain's (earlier or later) window position.
  if (ctx.now() > finish_time_) finish_time_ = ctx.now();
}

std::uint64_t Job::submit(int src_rank, int dst_rank, std::int64_t bytes, int tag,
                          ReqId send_req, MsgKind kind, std::uint64_t rdv_id) {
  const std::uint64_t msg_id =
      network_->send_message(node_of(src_rank), node_of(dst_rank), bytes, app_id_);
  inflight_.emplace(msg_id, MsgMeta{src_rank, dst_rank, tag, bytes, send_req, kind, rdv_id});
  system_->track(msg_id, *this);
  return msg_id;
}

void Job::post_send(int src_rank, int dst_rank, std::int64_t bytes, int tag, ReqId send_req) {
  const auto lock = maybe_lock();
  if (send_observer_ != nullptr) {
    send_observer_->on_post_send(app_id_, ranks_[static_cast<std::size_t>(src_rank)]->now(),
                                 src_rank, dst_rank, bytes, tag);
  }
  if (bytes <= protocol_.eager_threshold) {
    submit(src_rank, dst_rank, bytes, tag, send_req, MsgKind::kEager, 0);
    return;
  }
  // Rendezvous: RTS travels to the receiver; the payload waits for the CTS.
  const std::uint64_t rdv_id = next_rdv_id_++;
  rendezvous_.emplace(rdv_id, RdvState{src_rank, dst_rank, tag, bytes, send_req});
  submit(src_rank, dst_rank, protocol_.control_bytes, tag, send_req, MsgKind::kRts, rdv_id);
}

void Job::rdv_matched(std::uint64_t rdv_id, int dst_rank, ReqId recv_req) {
  const auto lock = maybe_lock();
  RdvState& state = rendezvous_.at(rdv_id);
  assert(!state.recv_known);
  state.recv_known = true;
  state.recv_req = recv_req;
  // Clear-to-send back to the data's source rank.
  submit(dst_rank, state.src_rank, protocol_.control_bytes, state.tag, 0, MsgKind::kCts, rdv_id);
}

void Job::rdv_sink(std::uint64_t rdv_id, int dst_rank) {
  const auto lock = maybe_lock();
  RdvState& state = rendezvous_.at(rdv_id);
  assert(!state.recv_known);
  state.recv_known = true;
  state.recv_req = kSinkRecv;
  submit(dst_rank, state.src_rank, protocol_.control_bytes, state.tag, 0, MsgKind::kCts, rdv_id);
}

void Job::on_message_sent(std::uint64_t msg_id) {
  const auto lock = maybe_lock();
  const MsgMeta* meta = inflight_.find(msg_id);
  assert(meta != nullptr);
  // The sender's request completes when its *payload* is fully on the wire:
  // immediately for eager, after the handshake for rendezvous.
  if (meta->kind == MsgKind::kEager || meta->kind == MsgKind::kRdvData) {
    ranks_[static_cast<std::size_t>(meta->src_rank)]->complete_request(meta->send_req);
  }
}

void Job::on_message_delivered(std::uint64_t msg_id) {
  const auto lock = maybe_lock();
  const MsgMeta* it = inflight_.find(msg_id);
  assert(it != nullptr);
  const MsgMeta meta = *it;
  inflight_.erase(msg_id);
  switch (meta.kind) {
    case MsgKind::kEager:
      ranks_[static_cast<std::size_t>(meta.dst_rank)]->deliver_eager(meta.src_rank, meta.tag,
                                                                     meta.bytes);
      break;
    case MsgKind::kRts: {
      // Header arrived: match it against the receiver's posted receives.
      const RdvState& state = rendezvous_.at(meta.rdv_id);
      ranks_[static_cast<std::size_t>(meta.dst_rank)]->deliver_rts(meta.src_rank, meta.tag,
                                                                   state.bytes, meta.rdv_id);
      break;
    }
    case MsgKind::kCts: {
      // Receiver is ready: ship the payload.
      const RdvState& state = rendezvous_.at(meta.rdv_id);
      submit(state.src_rank, state.dst_rank, state.bytes, state.tag, state.send_req,
             MsgKind::kRdvData, meta.rdv_id);
      break;
    }
    case MsgKind::kRdvData: {
      const RdvState* rdv = rendezvous_.find(meta.rdv_id);
      assert(rdv != nullptr && rdv->recv_known);
      const ReqId recv_req = rdv->recv_req;
      const int dst_rank = rdv->dst_rank;
      rendezvous_.erase(meta.rdv_id);
      if (recv_req != kSinkRecv) {
        ranks_[static_cast<std::size_t>(dst_rank)]->complete_request(recv_req);
      }
      break;
    }
  }
}

Accumulator Job::comm_time_stats() const {
  Accumulator acc;
  for (const auto& rank : ranks_) acc.add(to_ms(rank->comm_time()));
  return acc;
}

std::int64_t Job::total_bytes_sent() const {
  std::int64_t total = 0;
  for (const auto& rank : ranks_) total += rank->bytes_sent();
  return total;
}

std::int64_t Job::total_messages_sent() const {
  std::int64_t total = 0;
  for (const auto& rank : ranks_) total += rank->messages_sent();
  return total;
}

std::int64_t Job::peak_ingress_bytes() const {
  std::int64_t peak = 0;
  for (const auto& rank : ranks_) {
    if (rank->peak_ingress_bytes() > peak) peak = rank->peak_ingress_bytes();
  }
  return peak;
}

double Job::injection_rate_gbs() const {
  const SimTime elapsed = execution_time();
  if (elapsed <= 0) return 0.0;
  // bytes / ns == GB/s
  return static_cast<double>(total_bytes_sent()) / to_ns(elapsed);
}

MpiSystem::MpiSystem(Network& network, SimArena* arena) : arena_(arena) {
  if (arena_ != nullptr) owners_ = std::move(arena_->take_system_storage().owners);
  network.set_sink(*this);
}

MpiSystem::~MpiSystem() {
  if (arena_ == nullptr) return;
  owners_.clear();
  SystemStorage storage;
  storage.owners = std::move(owners_);
  arena_->return_system_storage(std::move(storage));
}

}  // namespace dfly::mpi

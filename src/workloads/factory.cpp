#include "workloads/factory.hpp"

#include <cmath>
#include <stdexcept>

#include "workloads/extended.hpp"
#include "workloads/motifs.hpp"

namespace dfly::workloads {

std::pair<int, int> near_square(int max_nodes) {
  int best_x = 1, best_y = 1;
  const int root = static_cast<int>(std::sqrt(static_cast<double>(max_nodes)));
  for (int nx = 1; nx <= root; ++nx) {
    int ny = max_nodes / nx;
    const int cap = nx + nx / 2;  // aspect ratio <= 1.5
    if (ny > cap) ny = cap;
    if (nx * ny > best_x * best_y) {
      best_x = nx;
      best_y = ny;
    }
  }
  return {best_x, best_y};
}

namespace {

std::vector<int> lqcd_dims(int max_nodes) {
  if (max_nodes >= 512) return {4, 4, 4, 8};  // paper pairwise size
  if (max_nodes >= 256) return {4, 4, 4, 4};  // paper mixed size (Table II)
  return Grid::balanced_dims(max_nodes, 4);
}

std::vector<int> stencil5d_dims(int max_nodes) {
  if (max_nodes >= 486) return {3, 3, 3, 3, 6};  // paper pairwise size
  if (max_nodes >= 243) return {3, 3, 3, 3, 3};  // paper mixed size (Table II)
  return Grid::balanced_dims(max_nodes, 5);
}

int cube_side(int max_nodes) {
  int side = 1;
  while ((side + 1) * (side + 1) * (side + 1) <= max_nodes) ++side;
  return side;
}

}  // namespace

AppInstance make_app(const std::string& name, int max_nodes, int scale) {
  if (max_nodes < 2) throw std::invalid_argument("make_app: need at least 2 nodes");

  if (name == "UR") {
    UniformRandomParams p;
    p.iterations = scaled(p.iterations, scale);
    return {std::make_unique<UniformRandomMotif>(p), max_nodes};
  }
  if (name == "LU") {
    LuSweepParams p;
    const auto [nx, ny] = near_square(max_nodes);
    p.nx = nx;
    p.ny = ny;
    p.iterations = scaled(p.iterations, scale);
    return {std::make_unique<LuSweepMotif>(p), nx * ny};
  }
  if (name == "FFT3D") {
    Fft3dParams p;
    const auto [rows, cols] = near_square(max_nodes);
    p.rows = rows;
    p.cols = cols;
    p.iterations = scaled(p.iterations, scale);
    return {std::make_unique<Fft3dMotif>(p), rows * cols};
  }
  if (name == "Halo3D") {
    NdStencilParams p = NdStencilMotif::halo3d();
    const int side = cube_side(max_nodes);
    p.dims = {side, side, side};
    p.iterations = scaled(p.iterations, scale);
    auto motif = std::make_unique<NdStencilMotif>(std::move(p));
    return {std::move(motif), side * side * side};
  }
  if (name == "LQCD") {
    NdStencilParams p = NdStencilMotif::lqcd();
    p.dims = lqcd_dims(max_nodes);
    p.iterations = scaled(p.iterations, scale);
    Grid grid(p.dims);
    const int nodes = grid.size();
    auto motif = std::make_unique<NdStencilMotif>(std::move(p));
    return {std::move(motif), nodes};
  }
  if (name == "Stencil5D") {
    NdStencilParams p = NdStencilMotif::stencil5d();
    p.dims = stencil5d_dims(max_nodes);
    p.iterations = scaled(p.iterations, scale);
    Grid grid(p.dims);
    const int nodes = grid.size();
    auto motif = std::make_unique<NdStencilMotif>(std::move(p));
    return {std::move(motif), nodes};
  }
  if (name == "CosmoFlow") {
    AllreducePeriodicParams p = AllreducePeriodicMotif::cosmoflow();
    p.iterations = scaled(p.iterations, scale, p.min_iterations);
    return {std::make_unique<AllreducePeriodicMotif>(std::move(p)), max_nodes};
  }
  if (name == "DL") {
    AllreducePeriodicParams p = AllreducePeriodicMotif::dl();
    p.iterations = scaled(p.iterations, scale, p.min_iterations);
    return {std::make_unique<AllreducePeriodicMotif>(std::move(p)), max_nodes};
  }
  if (name == "MILC") {
    MilcParams p;
    p.dims = lqcd_dims(max_nodes);
    p.iterations = scaled(p.iterations, scale);
    Grid grid(p.dims);
    const int nodes = grid.size();
    auto motif = std::make_unique<MilcMotif>(std::move(p));
    return {std::move(motif), nodes};
  }
  if (name == "IOBurst") {
    IoBurstParams p;
    p.iterations = scaled(p.iterations, scale, /*min_iters=*/2);
    return {std::make_unique<IoBurstMotif>(p), max_nodes};
  }
  if (name == "LULESH") {
    LuleshParams p;
    const int side = cube_side(max_nodes);
    p.nx = p.ny = p.nz = side;
    p.iterations = scaled(p.iterations, scale);
    return {std::make_unique<LuleshMotif>(p), side * side * side};
  }
  throw std::invalid_argument("unknown application: " + name);
}

const std::vector<std::string>& app_names() {
  static const std::vector<std::string> names{"UR",        "LU", "FFT3D",  "Halo3D", "LQCD",
                                              "Stencil5D", "CosmoFlow",    "DL",     "LULESH"};
  return names;
}

}  // namespace dfly::workloads

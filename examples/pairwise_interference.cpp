// Pairwise interference (paper §V at a glance): co-run a target application
// with a background application on half the system each and quantify the
// slowdown relative to running alone — under two routing policies.
//
//   $ ./pairwise_interference [target] [background]   (defaults: FFT3D Halo3D)

#include <cstdio>
#include <string>

#include "core/pairwise.hpp"

int main(int argc, char** argv) {
  const std::string target = argc > 1 ? argv[1] : "FFT3D";
  const std::string background = argc > 2 ? argv[2] : "Halo3D";

  std::printf("target=%s  background=%s  (1,056-node Dragonfly, random placement)\n\n",
              target.c_str(), background.c_str());
  std::printf("%-8s %14s %16s %10s\n", "routing", "alone (ms)", "interfered (ms)", "slowdown");

  for (const std::string routing : {"PAR", "Q-adp"}) {
    dfly::StudyConfig config;
    config.topo = dfly::DragonflyParams::paper();
    config.routing = routing;
    config.scale = 16;
    config.seed = 7;

    const dfly::PairwiseResult alone = dfly::run_pairwise(config, target, "None");
    const dfly::PairwiseResult both = dfly::run_pairwise(config, target, background);
    const double t0 = alone.target_report.comm_mean_ms;
    const double t1 = both.target_report.comm_mean_ms;
    std::printf("%-8s %14.3f %16.3f %9.2fx\n", routing.c_str(), t0, t1, t1 / t0);
  }
  std::printf("\nA slowdown near 1.0x means the routing shields the target from the\n"
              "background application's traffic (the paper's headline Q-adp result).\n");
  return 0;
}

// Micro-benchmarks (google-benchmark): the discrete-event engine's event
// throughput and the end-to-end simulator packet rate. These bound how
// large a --scale the experiment benches can afford.

#include <benchmark/benchmark.h>

#include "core/study.hpp"
#include "net/network.hpp"
#include "routing/factory.hpp"
#include "sim/engine.hpp"

namespace {

using namespace dfly;

class NullComponent final : public Component {
 public:
  void handle(Engine& engine, const Event& event) override {
    if (event.a > 0) engine.schedule_in(10, *this, 0, event.a - 1);
  }
};

/// Pure engine overhead: schedule + dispatch of chained events.
void BM_EngineEventChain(benchmark::State& state) {
  for (auto _ : state) {
    Engine engine;
    NullComponent component;
    const std::uint64_t chain = 100000;
    engine.schedule_at(0, component, 0, chain);
    engine.run();
    benchmark::DoNotOptimize(engine.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100001);
}
BENCHMARK(BM_EngineEventChain)->Unit(benchmark::kMillisecond);

/// Engine with a populated heap: random-time scheduling.
void BM_EngineRandomHeap(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    NullComponent component;
    Rng rng(1);
    for (int i = 0; i < events; ++i) {
      engine.schedule_at(static_cast<SimTime>(rng.next_below(1000000)), component, 0, 0);
    }
    engine.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * events);
}
BENCHMARK(BM_EngineRandomHeap)->Arg(1000)->Arg(100000)->Unit(benchmark::kMillisecond);

/// End-to-end packet rate: uniform-random traffic on the tiny system.
void BM_NetworkPacketRate(benchmark::State& state) {
  const std::string routing_name =
      state.range(0) == 0 ? "MIN" : (state.range(0) == 1 ? "UGALn" : "Q-adp");
  std::int64_t packets = 0;
  for (auto _ : state) {
    Engine engine;
    Dragonfly topo(DragonflyParams::tiny());
    NetConfig cfg;
    routing::RoutingContext context{&engine, &topo, &cfg, 1};
    auto routing = routing::make_routing(routing_name, context);
    Network net(engine, topo, cfg, *routing, 1, 1);
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
      const int src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo.num_nodes())));
      int dst = src;
      while (dst == src) {
        dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo.num_nodes())));
      }
      net.send_message(src, dst, 2048, 0);
    }
    engine.run();
    packets += static_cast<std::int64_t>(net.packet_log().delivered_packets(0));
  }
  state.SetItemsProcessed(packets);
  state.SetLabel(routing_name);
}
BENCHMARK(BM_NetworkPacketRate)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

/// Full-stack rate: one FFT3D iteration on the paper topology.
void BM_StudyFft3dIteration(benchmark::State& state) {
  for (auto _ : state) {
    StudyConfig config;
    config.topo = DragonflyParams::paper();
    config.routing = "UGALg";
    config.scale = 13;  // exactly one FFT3D iteration
    Study study(config);
    study.add_app("FFT3D", 528);
    const Report report = study.run();
    benchmark::DoNotOptimize(report.events_executed);
  }
}
BENCHMARK(BM_StudyFft3dIteration)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

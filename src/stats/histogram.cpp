#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace dfly {

void Histogram::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

std::int64_t Histogram::min() const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  return samples_.front();
}

std::int64_t Histogram::max() const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  return samples_.back();
}

std::int64_t Histogram::percentile(double q) const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  // Nearest-rank: the smallest value with at least q of the mass at or
  // below it (index = ceil(q*N) - 1).
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size()))) - 1;
  return samples_[std::min(rank, samples_.size() - 1)];
}

double Histogram::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (const auto s : samples_) {
    const double d = static_cast<double>(s) - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

void Histogram::merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sum_ += other.sum_;
  sorted_ = samples_.size() <= 1;
}

void Histogram::clear() {
  samples_.clear();
  sum_ = 0;
  sorted_ = true;
}

const std::vector<std::int64_t>& Histogram::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

double Accumulator::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = sum_sq_ / n - (sum_ / n) * (sum_ / n);
  return var <= 0.0 ? 0.0 : std::sqrt(var);
}

}  // namespace dfly

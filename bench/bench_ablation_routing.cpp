// Ablation: routing design choices beyond the paper's headline comparison.
//  (a) Q-adaptive hyperparameters — learning rate, exploration, and the
//      instantaneous-queue penalty weight — on the FFT3D+Halo3D pair.
//  (b) UGAL candidate count / non-minimal weight / minimal bias.
// These probe DESIGN.md's modelling decisions (Q init, epsilon-greedy,
// occupancy tie-break) and quantify their contribution. All variants run
// concurrently.

#include "bench_common.hpp"
#include "core/study.hpp"

namespace {

using namespace dfly;

double run_pair(const StudyConfig& config) {
  Study study(config);
  const int half = config.topo.num_nodes() / 2;
  study.add_app("FFT3D", half);
  study.add_app("Halo3D", half);
  const Report report = study.run();
  return report.app("FFT3D").comm_mean_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::Options::parse(argc, argv, 64);

  std::vector<std::string> labels;
  std::vector<std::function<double()>> tasks;
  const auto add = [&](const std::string& label, const StudyConfig& config) {
    labels.push_back(label);
    tasks.push_back([config] { return run_pair(config); });
  };

  // --- Q-adaptive variants ---
  add("Q default (a=.2 e=.01 w=1)", options.config("Q-adp"));
  for (const double alpha : {0.05, 0.5}) {
    StudyConfig config = options.config("Q-adp");
    config.qadp.alpha = alpha;
    add("Q alpha=" + bench::fmt(alpha), config);
  }
  for (const double epsilon : {0.0, 0.05}) {
    StudyConfig config = options.config("Q-adp");
    config.qadp.epsilon = epsilon;
    add("Q epsilon=" + bench::fmt(epsilon), config);
  }
  for (const double weight : {0.0, 2.0}) {
    StudyConfig config = options.config("Q-adp");
    config.qadp.queue_weight = weight;
    add("Q queue_weight=" + bench::fmt(weight), config);
  }
  // --- UGAL variants ---
  add("UGALn default (2+2, w2, b0)", options.config("UGALn"));
  for (const int candidates : {1, 4}) {
    StudyConfig config = options.config("UGALn");
    config.ugal.min_candidates = candidates;
    config.ugal.nonmin_candidates = candidates;
    add("UGALn candidates=" + std::to_string(candidates), config);
  }
  for (const int weight : {1, 3}) {
    StudyConfig config = options.config("UGALn");
    config.ugal.nonmin_weight = weight;
    add("UGALn nonmin_weight=" + std::to_string(weight), config);
  }
  for (const int bias : {2, 8}) {
    StudyConfig config = options.config("UGALn");
    config.ugal.bias = bias;
    add("UGALn min_bias=" + std::to_string(bias), config);
  }

  const auto results = bench::parallel_map(tasks);

  bench::print_header("Ablation — routing design choices (FFT3D comm time, ms, "
                      "interfered by Halo3D)");
  std::printf("%-30s %12s\n", "variant", "comm (ms)");
  bench::print_rule();
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%-30s %12.3f\n", labels[i].c_str(), results[i]);
  }
  return 0;
}

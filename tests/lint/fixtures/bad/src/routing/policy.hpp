#pragma once

namespace fixture {

class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;
};

struct Params {
  int knob{0};
};

class LeakyPolicy final : public RoutingAlgorithm {
 public:
  explicit LeakyPolicy(Params params) : params_(params) {}

 private:
  const Params params_;     // fine: immutable parameterisation
  mutable int scratch_{0};  // fine: scratch
  int drift_{0};            // routing-state: unregistered mutable member
};

}  // namespace fixture

#pragma once

#include <functional>
#include <map>
#include <unordered_set>

namespace fixture {

struct Node {};

struct PointerKeyed {
  std::map<Node*, int> by_address;        // det-pointer-key
  std::unordered_set<const Node*> seen;   // det-pointer-key
  std::hash<Node*> hasher;                // det-pointer-key
};

}  // namespace fixture

// Ablation: routing design choices beyond the paper's headline comparison.
//  (a) Q-adaptive hyperparameters — learning rate, exploration, and the
//      instantaneous-queue penalty weight — on the FFT3D+Halo3D pair.
//  (b) UGAL candidate count / non-minimal weight / minimal bias.
// These probe DESIGN.md's modelling decisions (Q init, epsilon-greedy,
// occupancy tie-break) and quantify their contribution.
//
// Declarative form: every hyperparameter variant is a PlanVariant — a named
// overlay of config keys on the base config — on one ExperimentPlan
// (core/plan.hpp); the campaign core runs all variants concurrently. The
// same sweep is expressible in a --plan file as
//   plan.variant.a05 = routing=Q-adp; qadp.alpha=0.05

#include "bench_common.hpp"
#include "core/plan.hpp"

int main(int argc, char** argv) {
  using namespace dfly;
  const bench::Options options = bench::Options::parse(argc, argv, 64);

  ExperimentPlan plan;
  plan.name = "ablation_routing";
  plan.base = options.config("Q-adp");
  plan.mode = PlanMode::kSingle;
  const int half = plan.base.topo.num_nodes() / 2;
  plan.jobs = {{"FFT3D", half}, {"Halo3D", half}};

  const auto add = [&plan](const std::string& label,
                           std::vector<std::pair<std::string, std::string>> overrides) {
    PlanVariant variant;
    variant.label = label;
    for (const auto& [key, value] : overrides) variant.overrides.set(key, value);
    plan.variants.push_back(std::move(variant));
  };

  // --- Q-adaptive variants ---
  add("Q default (a=.2 e=.01 w=1)", {});
  for (const char* alpha : {"0.05", "0.5"}) {
    add(std::string("Q alpha=") + alpha, {{"qadp.alpha", alpha}});
  }
  for (const char* epsilon : {"0", "0.05"}) {
    add(std::string("Q epsilon=") + epsilon, {{"qadp.epsilon", epsilon}});
  }
  for (const char* weight : {"0", "2"}) {
    add(std::string("Q queue_weight=") + weight, {{"qadp.queue_weight", weight}});
  }
  // --- UGAL variants ---
  add("UGALn default (2+2, w2, b0)", {{"routing", "UGALn"}});
  for (const char* candidates : {"1", "4"}) {
    add(std::string("UGALn candidates=") + candidates,
        {{"routing", "UGALn"},
         {"ugal.min_candidates", candidates},
         {"ugal.nonmin_candidates", candidates}});
  }
  for (const char* weight : {"1", "3"}) {
    add(std::string("UGALn nonmin_weight=") + weight,
        {{"routing", "UGALn"}, {"ugal.nonmin_weight", weight}});
  }
  for (const char* bias : {"2", "8"}) {
    add(std::string("UGALn min_bias=") + bias, {{"routing", "UGALn"}, {"ugal.bias", bias}});
  }

  CollectSink sink;
  run_plan(plan, sink, bench::default_jobs());

  bench::print_header("Ablation — routing design choices (FFT3D comm time, ms, "
                      "interfered by Halo3D)");
  std::printf("%-30s %12s\n", "variant", "comm (ms)");
  bench::print_rule();
  for (const PlanCell& cell : sink.cells()) {
    std::printf("%-30s %12.3f\n", cell.variant.c_str(),
                sink.reports()[cell.index].app("FFT3D").comm_mean_ms);
  }
  return 0;
}

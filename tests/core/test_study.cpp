#include "core/study.hpp"

#include <gtest/gtest.h>

#include "core/mixed.hpp"
#include "core/pairwise.hpp"

namespace dfly {
namespace {

StudyConfig tiny_config(const std::string& routing = "UGALg") {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = routing;
  config.scale = 64;
  return config;
}

TEST(Study, RunsSingleApp) {
  Study study(tiny_config());
  study.add_app("UR", 32);
  const Report report = study.run();
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.apps.size(), 1u);
  EXPECT_EQ(report.apps[0].app, "UR");
  EXPECT_GT(report.makespan, 0);
  EXPECT_GT(report.events_executed, 0u);
}

TEST(Study, ThrowsOnEmptyRun) {
  Study study(tiny_config());
  EXPECT_THROW(study.run(), std::logic_error);
}

TEST(Study, ThrowsOnDoubleRun) {
  Study study(tiny_config());
  study.add_app("UR", 16);
  study.run();
  EXPECT_THROW(study.run(), std::logic_error);
}

TEST(Study, CannotAddJobsAfterRun) {
  Study study(tiny_config());
  study.add_app("UR", 16);
  study.run();
  EXPECT_THROW(study.add_app("UR", 16), std::logic_error);
}

TEST(Study, TwoAppsShareTheSystem) {
  Study study(tiny_config());
  const int a = study.add_app("UR", 32);
  const int b = study.add_app("CosmoFlow", 32);
  const Report report = study.run();
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.apps.size(), 2u);
  EXPECT_EQ(report.apps[static_cast<std::size_t>(a)].app, "UR");
  EXPECT_EQ(report.apps[static_cast<std::size_t>(b)].app, "CosmoFlow");
  // Disjoint placement: 32 + 32 <= 72.
  EXPECT_GE(study.free_nodes(), 72 - 64);
}

TEST(Study, ReportAppLookupByName) {
  Study study(tiny_config());
  study.add_app("UR", 16);
  const Report report = study.run();
  EXPECT_EQ(report.app("UR").app, "UR");
  EXPECT_THROW(report.app("nope"), std::out_of_range);
}

TEST(Study, DeterministicAcrossIdenticalRuns) {
  Report r1, r2;
  {
    Study study(tiny_config());
    study.add_app("FFT3D", 32);
    r1 = study.run();
  }
  {
    Study study(tiny_config());
    study.add_app("FFT3D", 32);
    r2 = study.run();
  }
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.events_executed, r2.events_executed);
  EXPECT_DOUBLE_EQ(r1.apps[0].comm_mean_ms, r2.apps[0].comm_mean_ms);
}

TEST(Study, SeedChangesPlacementAndOutcome) {
  StudyConfig c1 = tiny_config();
  StudyConfig c2 = tiny_config();
  c2.seed = 777;
  Study s1(c1), s2(c2);
  s1.add_app("FFT3D", 32);
  s2.add_app("FFT3D", 32);
  const Report r1 = s1.run();
  const Report r2 = s2.run();
  EXPECT_NE(r1.makespan, r2.makespan);
}

TEST(Pairwise, StandaloneBaselineHasNoBackground) {
  const PairwiseResult result = run_pairwise(tiny_config(), "FFT3D", "None");
  EXPECT_EQ(result.background, "None");
  EXPECT_EQ(result.full.apps.size(), 1u);
  EXPECT_TRUE(result.full.completed);
}

TEST(Pairwise, CoRunHasBothApps) {
  const PairwiseResult result = run_pairwise(tiny_config(), "FFT3D", "UR");
  EXPECT_EQ(result.full.apps.size(), 2u);
  EXPECT_EQ(result.target_report.app, "FFT3D");
  EXPECT_EQ(result.background_report.app, "UR");
  EXPECT_TRUE(result.full.completed);
}

TEST(Pairwise, TargetMappingInvariantAcrossBackgrounds) {
  // The contract behind Fig 4: the target's node mapping must not change
  // when the background changes, so comm-time deltas are pure interference.
  StudyConfig config = tiny_config();
  Study s1(config), s2(config);
  const int half = 36;
  s1.add_app("FFT3D", half);
  s2.add_app("FFT3D", half);
  s2.add_app("UR", half);
  // Compare the two jobs' node lists after build (run both).
  s1.run();
  s2.run();
  ASSERT_EQ(s1.job(0).size(), s2.job(0).size());
  for (int r = 0; r < s1.job(0).size(); ++r) {
    EXPECT_EQ(s1.job(0).node_of(r), s2.job(0).node_of(r)) << "rank " << r;
  }
}

TEST(Pairwise, Fig4MatrixShape) {
  EXPECT_EQ(fig4_targets().size(), 6u);
  EXPECT_EQ(fig4_backgrounds().size(), 7u);
  EXPECT_EQ(fig4_backgrounds().front(), "None");
}

TEST(Mixed, Table2SpecsSumToFullSystem) {
  int total = 0;
  for (const auto& spec : table2_mix()) total += spec.nodes;
  EXPECT_EQ(total, 1056);
  EXPECT_EQ(table2_mix().size(), 6u);
}

TEST(Mixed, RunsOnPaperSystemScaledDown) {
  StudyConfig config;
  config.topo = DragonflyParams::paper();
  config.routing = "UGALg";
  config.scale = 256;  // minimum iterations: just exercise the plumbing
  const Report report = run_mixed(config);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.apps.size(), 6u);
  EXPECT_EQ(report.app("LQCD").nodes, 256);
  EXPECT_EQ(report.app("Stencil5D").nodes, 243);
}

TEST(Study, CongestionAndStallFieldsPopulated) {
  Study study(tiny_config());
  study.add_app("Halo3D", 64);
  const Report report = study.run();
  EXPECT_GT(report.agg_throughput_gb_per_ms, 0.0);
  EXPECT_GE(report.local_stall_ms, 0.0);
  EXPECT_GT(report.congestion_mean, 0.0);
  EXPECT_GE(report.congestion_max, report.congestion_mean);
}

}  // namespace
}  // namespace dfly

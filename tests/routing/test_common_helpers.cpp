#include <gtest/gtest.h>

#include "net/network.hpp"
#include "routing/common.hpp"
#include "routing/factory.hpp"
#include "../support/make_blueprint.hpp"

namespace dfly {
namespace {

/// Property tests for the shared routing helpers, exercised through a real
/// router (they need occupancy/rng state).
struct HelperFixture {
  HelperFixture() : bp(testsupport::make_blueprint()), topo(bp->topo()) {
    routing::RoutingContext context{&engine, &topo, &bp->net(), 3};
    routing = routing::make_routing("MIN", context);
    net = std::make_unique<Network>(engine, *bp, *routing, 1, 3);
  }
  Engine engine;
  std::shared_ptr<const SystemBlueprint> bp;
  const Dragonfly& topo;
  std::unique_ptr<RoutingAlgorithm> routing;
  std::unique_ptr<Network> net;
};

TEST(RoutingHelpers, TowardGroupAlwaysMakesProgress) {
  HelperFixture f;
  for (int r = 0; r < f.topo.num_routers(); ++r) {
    Router& router = f.net->router(r);
    const int my_group = f.topo.group_of_router(r);
    for (int g = 0; g < f.topo.num_groups(); ++g) {
      if (g == my_group) continue;
      for (int trial = 0; trial < 5; ++trial) {
        const int port = routing::toward_group_port(router, g);
        ASSERT_FALSE(f.topo.is_terminal_port(port));
        if (f.topo.is_global_port(port)) {
          // Own global: must land in the target group.
          EXPECT_EQ(f.topo.group_reached_by(r, port - f.topo.first_global_port()), g);
        } else {
          // Local: the peer must own a global to the target group.
          const int peer_local = f.topo.local_peer_of_port(r, port);
          const int peer = f.topo.router_id(my_group, peer_local);
          bool peer_is_gateway = false;
          for (const auto& e : f.topo.gateways(my_group, g)) {
            peer_is_gateway = peer_is_gateway || e.router == peer;
          }
          EXPECT_TRUE(peer_is_gateway)
              << "router " << r << " chose a local hop to a non-gateway for group " << g;
        }
      }
    }
  }
}

TEST(RoutingHelpers, TowardRouterIntraGroupIsDirect) {
  HelperFixture f;
  for (int r = 0; r < f.topo.num_routers(); ++r) {
    Router& router = f.net->router(r);
    const int my_group = f.topo.group_of_router(r);
    for (int l = 0; l < f.topo.params().a; ++l) {
      const int target = f.topo.router_id(my_group, l);
      if (target == r) continue;
      const int port = routing::toward_router_port(router, target);
      EXPECT_EQ(f.topo.local_peer_of_port(r, port), l);
    }
  }
}

TEST(RoutingHelpers, VcEqualsHopCount) {
  Packet pkt;
  for (int hops = 0; hops < 6; ++hops) {
    pkt.hops = static_cast<std::uint8_t>(hops);
    EXPECT_EQ(routing::vc_for(pkt), hops);
  }
}

TEST(RoutingHelpers, CommitValiantSetsState) {
  Packet pkt;
  routing::commit_valiant(pkt, 5, 21);
  EXPECT_TRUE(pkt.nonminimal);
  EXPECT_FALSE(pkt.reached_int);
  EXPECT_EQ(pkt.int_group, 5);
  EXPECT_EQ(pkt.int_router, 21);
}

TEST(RoutingHelpers, SampleMinimalTargetsDestinationGroup) {
  HelperFixture f;
  Packet pkt;
  pkt.dst_node = f.topo.num_nodes() - 1;
  Router& router = f.net->router(0);
  for (int trial = 0; trial < 20; ++trial) {
    const auto c = routing::sample_minimal(router, pkt);
    EXPECT_GE(c.port, f.topo.first_local_port());
    EXPECT_EQ(c.int_group, -1);
    EXPECT_EQ(c.occupancy, 0);  // idle network
  }
}

TEST(RoutingHelpers, SampleNonminimalAvoidsEndpointGroups) {
  HelperFixture f;
  Packet pkt;
  pkt.dst_node = f.topo.num_nodes() - 1;
  const int dst_group = f.topo.group_of_node(pkt.dst_node);
  Router& router = f.net->router(0);
  for (int trial = 0; trial < 50; ++trial) {
    const auto c = routing::sample_nonminimal(router, pkt, /*pick_router=*/true);
    ASSERT_GE(c.int_group, 0);
    EXPECT_NE(c.int_group, 0);          // source group
    EXPECT_NE(c.int_group, dst_group);  // destination group
    ASSERT_GE(c.int_router, 0);
    EXPECT_EQ(f.topo.group_of_router(c.int_router), c.int_group);
  }
}

}  // namespace
}  // namespace dfly

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace dfly::mpi {

inline constexpr int kAnySource = -1;

/// MPI-style (source, tag) matching for one rank.
///
/// Posted receives match inbound arrivals in post order; arrivals that find
/// no matching receive park in the unexpected queue. An "arrival" is either
/// a completed eager message (rdv_id == 0) or a rendezvous RTS header
/// (rdv_id != 0) whose payload is still at the sender.
///
/// Matching semantics (mirrors MPI's non-overtaking rule):
///  - on_arrival scans the posted list in post order and consumes the first
///    receive whose (src, tag) accepts the arrival; kAnySource receives
///    accept any sender.
///  - post_recv scans the unexpected queue in arrival order and consumes the
///    first parked arrival it accepts; otherwise the receive is appended to
///    the posted list.
///
/// Storage: both queues are slot pools threaded into intrusive FIFO lists —
/// erase-from-the-middle relinks two indices instead of shifting a deque, and
/// freed slots recycle through a free list, so a rank's matching works
/// allocation-free once the pools have grown to its peak queue depth. The
/// pools ride the SimArena lifecycle via reset(): a recycled RankCtx keeps
/// its high-water capacity and replays the next same-shape cell without
/// touching the heap (see core/arena.hpp and docs/ARCHITECTURE.md).
class MatchList {
 public:
  struct Posted {
    int src_rank;  ///< kAnySource matches any sender
    int tag;
    std::uint32_t request;  ///< rank-local request id
  };
  struct Unexpected {
    int src_rank;
    int tag;
    std::int64_t bytes;
    SimTime arrived;
    std::uint64_t rdv_id;  ///< 0 for eager data, else the rendezvous handle
  };

  static constexpr std::uint32_t kNoMatch = 0xffffffffu;

  /// Match an arrival against posted receives. Returns the matched request
  /// id, or kNoMatch after parking the arrival as unexpected.
  std::uint32_t on_arrival(int src_rank, int tag, std::int64_t bytes, SimTime now,
                           std::uint64_t rdv_id);

  /// Satisfy a new receive from the unexpected queue if possible; otherwise
  /// post it. Returns the consumed unexpected entry on a hit.
  std::optional<Unexpected> post_recv(int src_rank, int tag, std::uint32_t request);

  std::size_t posted_count() const { return posted_.size; }
  std::size_t unexpected_count() const { return unexpected_.size; }

  /// Drop every queued entry and restore the freshly-constructed hand-out
  /// order, keeping both pools' slot storage for the next cell.
  void reset();
  /// Pre-size both pools (used when recycling carries a known peak).
  void reserve(std::size_t posted, std::size_t unexpected);
  /// Carried slot capacity across both pools (stats/test hook).
  std::size_t capacity() const {
    return posted_.slots.size() + unexpected_.slots.size();
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// Slot pool threaded into one intrusive FIFO list plus a LIFO free list.
  /// reset() re-chains the free list in ascending slot order so a recycled
  /// pool hands out slot ids exactly like a fresh one (determinism across
  /// arena reuse).
  template <typename T>
  struct Pool {
    struct Node {
      T item;
      std::uint32_t next;
    };
    std::vector<Node> slots;
    std::uint32_t head{kNil};
    std::uint32_t tail{kNil};
    std::uint32_t free{kNil};
    std::size_t size{0};

    void push_back(T item) {
      std::uint32_t slot;
      if (free != kNil) {
        slot = free;
        free = slots[slot].next;
      } else {
        slot = static_cast<std::uint32_t>(slots.size());
        slots.emplace_back();
      }
      slots[slot].item = item;
      slots[slot].next = kNil;
      if (tail == kNil) {
        head = slot;
      } else {
        slots[tail].next = slot;
      }
      tail = slot;
      ++size;
    }

    /// Unlink `slot` (whose predecessor is `prev`, kNil for the head) and
    /// recycle it onto the free list.
    void erase_after(std::uint32_t prev, std::uint32_t slot) {
      const std::uint32_t next = slots[slot].next;
      if (prev == kNil) {
        head = next;
      } else {
        slots[prev].next = next;
      }
      if (tail == slot) tail = prev;
      slots[slot].next = free;
      free = slot;
      --size;
    }

    void reset() {
      head = tail = kNil;
      size = 0;
      free = kNil;
      // Ascending free-list order => hand-out order matches a fresh pool.
      for (std::uint32_t i = static_cast<std::uint32_t>(slots.size()); i > 0; --i) {
        slots[i - 1].next = free;
        free = i - 1;
      }
    }

    void reserve(std::size_t n) {
      if (n <= slots.size()) return;
      slots.resize(n);
      reset();
    }
  };

  Pool<Posted> posted_;
  Pool<Unexpected> unexpected_;
};

}  // namespace dfly::mpi

#include "routing/factory.hpp"

#include <stdexcept>

#include "routing/app_aware.hpp"
#include "routing/flow_aware.hpp"
#include "routing/minimal.hpp"
#include "routing/par.hpp"
#include "routing/valiant.hpp"

namespace dfly::routing {

std::unique_ptr<RoutingAlgorithm> make_routing(const std::string& name,
                                               const RoutingContext& context) {
  if (name == "MIN") return std::make_unique<MinimalRouting>();
  if (name == "VALg") return std::make_unique<ValiantRouting>(false);
  if (name == "VALn") return std::make_unique<ValiantRouting>(true);
  if (name == "UGALg") return std::make_unique<UgalRouting>(false, context.ugal);
  if (name == "UGALn") return std::make_unique<UgalRouting>(true, context.ugal);
  if (name == "PAR") return std::make_unique<ParRouting>(context.ugal);
  if (name == "AppAware") {
    AppAwareParams params;
    params.ugal = context.ugal;
    return std::make_unique<AppAwareUgalRouting>(params);
  }
  if (name == "FlowUGAL") {
    FlowAwareParams params;
    params.ugal = context.ugal;
    return std::make_unique<FlowAwareRouting>(params);
  }
  if (name == "Q-adp") {
    return std::make_unique<QAdaptiveRouting>(*context.engine, *context.topo, *context.cfg,
                                              context.qadp, context.seed, context.qinit);
  }
  throw std::invalid_argument("unknown routing algorithm: " + name);
}

bool is_cell_parallel(const std::string& name) {
  return name == "MIN" || name == "VALg" || name == "VALn" || name == "UGALg" ||
         name == "UGALn" || name == "PAR";
}

const std::vector<std::string>& paper_routings() {
  static const std::vector<std::string> names{"UGALg", "UGALn", "PAR", "Q-adp"};
  return names;
}

const std::vector<std::string>& all_routings() {
  static const std::vector<std::string> names{"MIN",   "VALg",     "VALn",     "UGALg",
                                               "UGALn", "PAR",      "FlowUGAL", "AppAware",
                                               "Q-adp"};
  return names;
}

}  // namespace dfly::routing

#include "routing/minimal.hpp"

#include <cassert>

#include "routing/common.hpp"

namespace dfly::routing {

int toward_group_port(Router& r, int target_group) {
  const Dragonfly& topo = r.topo();
  const int here_group = topo.group_of_router(r.id());
  assert(here_group != target_group && "already in the target group");
  const auto& gw = topo.gateways(here_group, target_group);
  assert(!gw.empty());
  // Own global links first (zero extra hops).
  int own = 0;
  for (const auto& e : gw) {
    if (e.router == r.id()) ++own;
  }
  if (own > 0) {
    auto pick = static_cast<int>(r.rng().next_below(static_cast<std::uint64_t>(own)));
    for (const auto& e : gw) {
      if (e.router == r.id() && pick-- == 0) return topo.global_port(e.global_port);
    }
  }
  const auto& e = gw[r.rng().next_below(gw.size())];
  return topo.local_port_to(r.id(), topo.local_index(e.router));
}

int toward_router_port(Router& r, int target_router) {
  const Dragonfly& topo = r.topo();
  assert(target_router != r.id());
  const int tg = topo.group_of_router(target_router);
  if (tg == topo.group_of_router(r.id())) {
    return topo.local_port_to(r.id(), topo.local_index(target_router));
  }
  return toward_group_port(r, tg);
}

void commit_valiant(Packet& pkt, int int_group, int int_router) {
  pkt.nonminimal = true;
  pkt.reached_int = false;
  pkt.int_group = static_cast<std::int16_t>(int_group);
  pkt.int_router = static_cast<std::int16_t>(int_router);
}

RouteDecision continue_route(Router& r, Packet& pkt) {
  const Dragonfly& topo = r.topo();
  const int dst_router = dst_router_of(r, pkt);
  if (r.id() == dst_router) return eject(r, pkt);

  if (pkt.nonminimal && !pkt.reached_int) {
    const bool at_midpoint = pkt.int_router >= 0
                                 ? r.id() == pkt.int_router
                                 : topo.group_of_router(r.id()) == pkt.int_group;
    if (at_midpoint) {
      pkt.reached_int = true;
    } else {
      const int port = pkt.int_router >= 0 ? toward_router_port(r, pkt.int_router)
                                           : toward_group_port(r, pkt.int_group);
      return RouteDecision{static_cast<std::int16_t>(port), vc_for(pkt)};
    }
  }
  const int port = toward_router_port(r, dst_router);
  return RouteDecision{static_cast<std::int16_t>(port), vc_for(pkt)};
}

Candidate sample_minimal(Router& r, const Packet& pkt) {
  const Dragonfly& topo = r.topo();
  const int dst_router = dst_router_of(r, pkt);
  Candidate c;
  if (topo.group_of_router(dst_router) == topo.group_of_router(r.id())) {
    c.port = topo.local_port_to(r.id(), topo.local_index(dst_router));
  } else {
    c.port = toward_group_port(r, topo.group_of_router(dst_router));
  }
  c.occupancy = r.occupancy(c.port);
  return c;
}

Candidate sample_nonminimal(Router& r, const Packet& pkt, bool pick_router) {
  const Dragonfly& topo = r.topo();
  const int g = topo.num_groups();
  const int src_group = topo.group_of_router(r.id());
  const int dst_group = topo.group_of_router(dst_router_of(r, pkt));
  // Draw an intermediate group != src, dst (there are always >= 1 others on
  // any system with g >= 3; with g == 2 fall back to the destination group,
  // degenerating to a minimal route).
  Candidate c;
  if (g <= 2) {
    c = sample_minimal(r, pkt);
    return c;
  }
  int pick = src_group;
  while (pick == src_group || pick == dst_group) {
    pick = static_cast<int>(r.rng().next_below(static_cast<std::uint64_t>(g)));
  }
  c.int_group = pick;
  if (pick_router) {
    c.int_router = topo.router_id(
        pick, static_cast<int>(r.rng().next_below(static_cast<std::uint64_t>(topo.params().a))));
  }
  c.port = toward_group_port(r, pick);
  c.occupancy = r.occupancy(c.port);
  return c;
}

RouteDecision MinimalRouting::route(Router& router, Packet& pkt) {
  pkt.phase = RoutePhase::kDstGroup;  // phases are not used by static minimal
  return continue_route(router, pkt);
}

}  // namespace dfly::routing

#include "net/fault.hpp"

#include <stdexcept>

namespace dfly {

void FaultPlan::merge(const FaultPlan& other) {
  faults_.insert(faults_.end(), other.faults_.begin(), other.faults_.end());
}

FaultPlan FaultPlan::degrade_global(const Dragonfly& topo, int group_a, int group_b,
                                    int slowdown, SimTime extra_latency) {
  if (group_a == group_b) throw std::invalid_argument("degrade_global: group_a == group_b");
  FaultPlan plan;
  for (const auto& [src, dst] : {std::pair{group_a, group_b}, std::pair{group_b, group_a}}) {
    for (const GlobalEndpoint& ep : topo.gateways(src, dst)) {
      plan.add(LinkFault{ep.router, topo.global_port(ep.global_port), slowdown, extra_latency});
    }
  }
  return plan;
}

FaultPlan FaultPlan::degrade_random_globals(const Dragonfly& topo, double fraction,
                                            int slowdown, SimTime extra_latency,
                                            std::uint64_t seed) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("degrade_random_globals: fraction outside [0,1]");
  }
  FaultPlan plan;
  Rng rng(seed, 0xFA017);
  for (int r = 0; r < topo.num_routers(); ++r) {
    for (int k = 0; k < topo.params().h; ++k) {
      if (rng.next_bernoulli(fraction)) {
        plan.add(LinkFault{r, topo.global_port(k), slowdown, extra_latency});
      }
    }
  }
  return plan;
}

FaultPlan FaultPlan::degrade_router_locals(const Dragonfly& topo, int router,
                                           int slowdown, SimTime extra_latency) {
  FaultPlan plan;
  for (int port = topo.first_local_port(); port < topo.first_global_port(); ++port) {
    plan.add(LinkFault{router, port, slowdown, extra_latency});
  }
  return plan;
}

namespace {

/// Parse one non-negative integer field of a fault entry.
long parse_field(const std::string& entry, std::size_t& pos, const char* what) {
  std::size_t used = 0;
  long value = 0;
  try {
    value = std::stol(entry.substr(pos), &used);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("fault plan: bad ") + what + " in '" + entry + "'");
  }
  if (value < 0) {
    throw std::invalid_argument(std::string("fault plan: negative ") + what + " in '" + entry +
                                "'");
  }
  pos += used;
  return value;
}

LinkFault parse_entry(const std::string& entry) {
  LinkFault fault;
  std::size_t pos = 0;
  fault.router = static_cast<int>(parse_field(entry, pos, "router"));
  if (pos >= entry.size() || entry[pos] != ':') {
    throw std::invalid_argument("fault plan: expected ':port' in '" + entry + "'");
  }
  ++pos;
  fault.port = static_cast<int>(parse_field(entry, pos, "port"));
  if (pos >= entry.size() || entry[pos] != ':') {
    throw std::invalid_argument("fault plan: expected ':slowdown' in '" + entry + "'");
  }
  ++pos;
  fault.slowdown = static_cast<int>(parse_field(entry, pos, "slowdown"));
  if (fault.slowdown < 1) {
    throw std::invalid_argument("fault plan: slowdown must be >= 1 in '" + entry + "'");
  }
  if (pos < entry.size()) {
    if (entry[pos] != ':') {
      throw std::invalid_argument("fault plan: trailing garbage in '" + entry + "'");
    }
    ++pos;
    fault.extra_latency = parse_field(entry, pos, "extra_ns") * kNs;
  }
  if (pos != entry.size()) {
    throw std::invalid_argument("fault plan: trailing garbage in '" + entry + "'");
  }
  return fault;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    if (end > start) plan.add(parse_entry(spec.substr(start, end - start)));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return plan;
}

}  // namespace dfly

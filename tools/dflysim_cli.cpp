// dflysim — command-line driver for the interference study framework.
//
// Runs any mix of the paper's applications (or replayed traces) on any
// Dragonfly shape and routing, with machine-readable output. Everything the
// Study API exposes is reachable from here without recompiling:
//
//   # the paper's FFT3D-vs-Halo3D pairwise case, JSON to stdout
//   dflysim --app=FFT3D:528 --app=Halo3D:528 --routing=Q-adp --json=-
//
//   # declarative system + 5-seed sweep with aggregated statistics
//   dflysim --config=paper.cfg --app=LQCD:256 --app=Stencil5D:243 --sweep=5
//
//   # a whole campaign from one file (see core/plan.hpp), JSONL streamed out
//   dflysim --plan=examples/fig4_campaign.cfg --jsonl=fig4.jsonl --jobs=8
//
//   # record a trace, write the IO-module CSV set
//   dflysim --app=LU:140 --trace=0:lu.csv --csv=run1
//
//   # crash-safe campaign: journal every finished cell, resume after kill -9
//   dflysim --plan=fig4.cfg --jsonl=fig4.jsonl --journal=fig4.journal
//   dflysim --plan=fig4.cfg --jsonl=fig4.jsonl --journal=fig4.journal --resume
//
//   # shard a campaign across hosts, then reassemble byte-identically
//   dflysim --plan=fig4.cfg --shard=1/2 --jsonl=a.jsonl   # host A
//   dflysim --plan=fig4.cfg --shard=2/2 --jsonl=b.jsonl   # host B
//   dflysim --merge-shards=fig4.jsonl a.jsonl b.jsonl
//
// Exit status (see docs/ROBUSTNESS.md):
//   0  success — every cell (or the single run) simulated and completed
//   1  usage error, or a fatal error before/outside the run loop
//   2  the run finished, but with recorded failures or incomplete cells

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/arena.hpp"
#include "core/blueprint.hpp"
#include "core/config_file.hpp"
#include "core/journal.hpp"
#include "core/json_report.hpp"
#include "core/plan.hpp"
#include "core/study.hpp"
#include "core/sweep.hpp"
#include "routing/factory.hpp"
#include "topo/placement.hpp"
#include "viz/ascii.hpp"
#include "workloads/factory.hpp"

#ifndef _WIN32
#include <csignal>

#include "serve/protocol.hpp"
#include "serve/server.hpp"
#endif

namespace {

using namespace dfly;

struct AppSpec {
  std::string name;
  int nodes{0};  ///< 0 = all remaining
};

struct CliOptions {
  StudyConfig config;
  std::vector<AppSpec> apps;
  std::string json_path;   ///< "-" = stdout
  std::string csv_prefix;
  int trace_app{-1};
  std::string trace_path;
  int sweep{1};
  int jobs{0};  ///< sweep/plan worker threads; 0 = DFSIM_JOBS, else sequential
  int cell_threads{0};  ///< intra-cell threads; 0 = DFSIM_CELL_THREADS, else 1
  // Campaign mode (core/plan.hpp):
  std::string plan_path;                                    ///< --plan=FILE
  std::vector<std::pair<std::string, std::string>> sets;    ///< --set=KEY=VALUE
  std::string jsonl_path;                                   ///< "-" = stdout
  std::string plan_csv_path;                                ///< --plan-csv=FILE
  // Fault tolerance (docs/ROBUSTNESS.md):
  std::string journal_path;  ///< --journal=FILE: fsync'd per-cell journal
  bool resume{false};        ///< --resume: skip journaled cells, continue
  std::string shard;         ///< --shard=K/N: run a deterministic slice
  std::string merge_out;     ///< --merge-shards=OUT: reassemble shard JSONLs
  std::vector<std::string> merge_inputs;  ///< positional inputs for the merge
  // Campaign daemon (src/serve, docs/DAEMON.md):
  std::string serve_socket;     ///< --serve=SOCKET: run the campaign daemon
  std::string spool_dir;        ///< --spool=DIR: daemon spool (default SOCKET.spool)
  std::string submit_socket;    ///< --submit=SOCKET: send --plan to a daemon
  std::string shutdown_socket;  ///< --shutdown=SOCKET: stop a daemon
  bool shutdown_now{false};     ///< --now: cancel running campaigns, don't drain
  /// Single-run/sweep flags seen on the command line; a --plan run rejects
  /// them instead of silently ignoring them (the plan file owns the config).
  std::vector<std::string> single_run_flags;
};

[[noreturn]] void usage(int code) {
  std::fputs(
      "usage: dflysim [options]\n"
      "  --config=FILE        key=value config file (see core/config_file.hpp)\n"
      "  --plan=FILE          run a whole declarative campaign (plan.* keys, see\n"
      "                       core/plan.hpp); combines with --set/--jsonl/--plan-csv\n"
      "                       and --jobs, not with --app\n"
      "  --set=KEY=VALUE      override one config/plan key before the campaign is\n"
      "                       built (repeatable; e.g. --set=plan.seeds=1..4)\n"
      "  --jsonl=FILE         stream one JSON object per finished campaign cell\n"
      "                       ('-' = stdout; identical bytes for any --jobs)\n"
      "  --plan-csv=FILE      also write the campaign's per-app CSV table (written\n"
      "                       to FILE.tmp and atomically renamed when complete)\n"
      "  --journal=FILE       durably record every finished campaign cell (one\n"
      "                       fsync'd JSON line each) so the campaign survives\n"
      "                       crashes; see --resume and docs/ROBUSTNESS.md\n"
      "  --resume             continue a journaled campaign: skip recorded cells,\n"
      "                       truncate any torn output tail, and produce output\n"
      "                       byte-identical to an uninterrupted run (needs\n"
      "                       --journal=FILE and --jsonl=FILE, not '-')\n"
      "  --shard=K/N          run only cells with index %% N == K-1 (1 <= K <= N);\n"
      "                       N invocations partition the campaign deterministically\n"
      "  --merge-shards=OUT   reassemble per-shard --jsonl outputs into one\n"
      "                       campaign file: dflysim --merge-shards=OUT A B ...\n"
      "  --serve=SOCKET       run as a campaign daemon on a unix socket: accept\n"
      "                       submitted plans over newline-delimited JSON, stream\n"
      "                       results back, journal every campaign under the spool\n"
      "                       dir, and resume unfinished campaigns on restart\n"
      "                       (combines with --jobs/--spool; see docs/DAEMON.md)\n"
      "  --spool=DIR          daemon spool directory (default: SOCKET.spool)\n"
      "  --submit=SOCKET      submit --plan=FILE (plus --set overrides) to a\n"
      "                       serving daemon; cell JSONL streams to stdout\n"
      "                       byte-identical to a local --plan run with --jsonl=-\n"
      "  --shutdown=SOCKET    ask a serving daemon to exit after draining running\n"
      "                       campaigns (add --now to cancel them instead)\n"
      "  --app=NAME:NODES     add an application (repeatable; NODES=0 fills the machine)\n"
      "  --routing=NAME       MIN|VALg|VALn|UGALg|UGALn|PAR|FlowUGAL|AppAware|Q-adp\n"
      "  --placement=NAME     random|contiguous|linear\n"
      "  --arrangement=NAME   relative|absolute (global-link wiring)\n"
      "  --seed=N             RNG seed (default 42)\n"
      "  --scale=N            iteration divisor (default 1 = paper volumes)\n"
      "  --sweep=N            repeat with seeds seed..seed+N-1, print aggregate\n"
      "  --jobs=N             worker threads for --sweep cells (default: the\n"
      "                       DFSIM_JOBS env var, else 1; output is identical\n"
      "                       for any N)\n"
      "  --cell-threads=N     threads *inside* each cell: partition the groups\n"
      "                       across N domain engines (default: the\n"
      "                       DFSIM_CELL_THREADS env var, else 1; output is\n"
      "                       byte-identical for any N; ineligible cells fall\n"
      "                       back to sequential; total threads ~ jobs x N)\n"
      "  --no-arena           rebuild every sweep cell from scratch instead of\n"
      "                       reusing per-worker arena storage (DFSIM_NO_ARENA\n"
      "                       does the same; output is identical either way)\n"
      "  --no-blueprint       build a private topology/wiring/routing plan per\n"
      "                       cell instead of sharing one immutable\n"
      "                       SystemBlueprint across workers (DFSIM_NO_BLUEPRINT\n"
      "                       does the same; output is identical either way)\n"
      "  --json=FILE          write the report as JSON ('-' = stdout)\n"
      "  --csv=PREFIX         write <PREFIX>_{apps,congestion,stall}.csv\n"
      "  --trace=APP:FILE     record application APP's message trace to FILE\n"
      "  --fault=SPEC         degrade links: router:port:slowdown[:extra_ns],...\n"
      "  --list-apps          print the nine application names and exit\n"
      "  --list-routings      print every routing algorithm and exit\n"
      "  --list-placements    print every placement policy and exit\n"
      "  --help               this text\n"
      "exit status: 0 = success; 1 = usage/fatal error; 2 = ran to the end but\n"
      "some cells failed or did not complete (campaign failures are recorded,\n"
      "not fatal — see docs/ROBUSTNESS.md)\n",
      code == 0 ? stdout : stderr);
  std::exit(code);
}

AppSpec parse_app(const std::string& value) {
  const auto colon = value.find(':');
  AppSpec spec;
  spec.name = value.substr(0, colon);
  if (colon != std::string::npos) spec.nodes = std::stoi(value.substr(colon + 1));
  if (spec.name.empty()) throw std::invalid_argument("--app needs NAME[:NODES]");
  // Fail fast on a typo'd name — one clean line and exit 1, instead of
  // throwing out of make_app after the network has been built.
  const auto& names = workloads::app_names();
  if (std::find(names.begin(), names.end(), spec.name) == names.end()) {
    std::fprintf(stderr, "dflysim: unknown application '%s' (see --list-apps)\n",
                 spec.name.c_str());
    std::exit(1);
  }
  return spec;
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  options.config.scale = 1;
  auto value_of = [](const char* arg) {
    const char* eq = std::strchr(arg, '=');
    if (eq == nullptr) throw std::invalid_argument(std::string("missing '=' in ") + arg);
    return std::string(eq + 1);
  };
  // Flags that configure a single run / sweep directly. In --plan mode the
  // plan file (plus --set) owns the whole configuration, so these are
  // rejected rather than silently dropped.
  const auto single_run = [&options](const char* flag) { options.single_run_flags.push_back(flag); };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0) usage(0);
    if (std::strcmp(arg, "--list-apps") == 0) {
      for (const std::string& name : workloads::app_names()) std::printf("%s\n", name.c_str());
      std::exit(0);
    }
    if (std::strcmp(arg, "--list-routings") == 0) {
      for (const std::string& name : routing::all_routings()) std::printf("%s\n", name.c_str());
      std::exit(0);
    }
    if (std::strcmp(arg, "--list-placements") == 0) {
      for (const std::string& name : all_placements()) std::printf("%s\n", name.c_str());
      std::exit(0);
    }
    if (std::strncmp(arg, "--config=", 9) == 0) {
      single_run("--config");
      options.config = apply_config(std::move(options.config), ConfigFile::load(value_of(arg)));
    } else if (std::strncmp(arg, "--app=", 6) == 0) {
      single_run("--app");
      options.apps.push_back(parse_app(value_of(arg)));
    } else if (std::strncmp(arg, "--routing=", 10) == 0) {
      single_run("--routing");
      options.config.routing = value_of(arg);
    } else if (std::strncmp(arg, "--placement=", 12) == 0) {
      single_run("--placement");
      options.config.placement = placement_from_string(value_of(arg));
    } else if (std::strncmp(arg, "--arrangement=", 14) == 0) {
      single_run("--arrangement");
      options.config.topo.arrangement = arrangement_from_string(value_of(arg));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      single_run("--seed");
      options.config.seed = std::stoull(value_of(arg));
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      single_run("--scale");
      options.config.scale = std::stoi(value_of(arg));
    } else if (std::strncmp(arg, "--sweep=", 8) == 0) {
      single_run("--sweep");
      options.sweep = std::stoi(value_of(arg));
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      options.jobs = std::stoi(value_of(arg));
      if (options.jobs < 0) options.jobs = 0;  // 0 = auto (DFSIM_JOBS, else 1)
    } else if (std::strncmp(arg, "--cell-threads=", 15) == 0) {
      options.cell_threads = std::stoi(value_of(arg));
      if (options.cell_threads < 0) options.cell_threads = 0;  // 0 = auto
    } else if (std::strcmp(arg, "--no-arena") == 0) {
      set_arena_enabled(false);
    } else if (std::strcmp(arg, "--no-blueprint") == 0) {
      set_blueprint_enabled(false);
    } else if (std::strncmp(arg, "--plan=", 7) == 0) {
      options.plan_path = value_of(arg);
    } else if (std::strncmp(arg, "--set=", 6) == 0) {
      const std::string pair = value_of(arg);
      const auto eq = pair.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw std::invalid_argument("--set needs KEY=VALUE");
      }
      options.sets.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
    } else if (std::strncmp(arg, "--jsonl=", 8) == 0) {
      options.jsonl_path = value_of(arg);
    } else if (std::strncmp(arg, "--plan-csv=", 11) == 0) {
      options.plan_csv_path = value_of(arg);
    } else if (std::strncmp(arg, "--journal=", 10) == 0) {
      options.journal_path = value_of(arg);
    } else if (std::strcmp(arg, "--resume") == 0) {
      options.resume = true;
    } else if (std::strncmp(arg, "--shard=", 8) == 0) {
      options.shard = value_of(arg);
    } else if (std::strncmp(arg, "--merge-shards=", 15) == 0) {
      options.merge_out = value_of(arg);
    } else if (std::strncmp(arg, "--serve=", 8) == 0) {
      options.serve_socket = value_of(arg);
    } else if (std::strncmp(arg, "--spool=", 8) == 0) {
      options.spool_dir = value_of(arg);
    } else if (std::strncmp(arg, "--submit=", 9) == 0) {
      options.submit_socket = value_of(arg);
    } else if (std::strncmp(arg, "--shutdown=", 11) == 0) {
      options.shutdown_socket = value_of(arg);
    } else if (std::strcmp(arg, "--now") == 0) {
      options.shutdown_now = true;
    } else if (arg[0] != '-') {
      options.merge_inputs.emplace_back(arg);  // positional: shard inputs
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      single_run("--json");
      options.json_path = value_of(arg);
    } else if (std::strncmp(arg, "--csv=", 6) == 0) {
      single_run("--csv");
      options.csv_prefix = value_of(arg);
    } else if (std::strncmp(arg, "--fault=", 8) == 0) {
      single_run("--fault");
      options.config.faults.merge(parse_fault_plan(value_of(arg)));
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      single_run("--trace");
      const std::string value = value_of(arg);
      const auto colon = value.find(':');
      if (colon == std::string::npos) throw std::invalid_argument("--trace needs APP:FILE");
      options.trace_app = std::stoi(value.substr(0, colon));
      options.trace_path = value.substr(colon + 1);
    } else {
      std::fprintf(stderr, "unknown option: %s\n\n", arg);
      usage(1);
    }
  }
  // Daemon modes (docs/DAEMON.md). Each is a standalone mode like
  // --merge-shards: anything it cannot honour is rejected, not ignored.
  const int daemon_modes = (options.serve_socket.empty() ? 0 : 1) +
                           (options.submit_socket.empty() ? 0 : 1) +
                           (options.shutdown_socket.empty() ? 0 : 1);
  if (daemon_modes > 1) {
    std::fputs("--serve, --submit and --shutdown are mutually exclusive modes\n\n", stderr);
    usage(1);
  }
  if (!options.spool_dir.empty() && options.serve_socket.empty()) {
    std::fputs("--spool only applies to --serve (the daemon owns the spool)\n\n", stderr);
    usage(1);
  }
  if (options.shutdown_now && options.shutdown_socket.empty()) {
    std::fputs("--now only applies to --shutdown\n\n", stderr);
    usage(1);
  }
  if (!options.serve_socket.empty()) {
    if (!options.single_run_flags.empty() || !options.plan_path.empty() ||
        !options.merge_out.empty() || !options.sets.empty() || !options.jsonl_path.empty() ||
        !options.plan_csv_path.empty() || !options.journal_path.empty() || options.resume ||
        !options.shard.empty()) {
      std::fputs("--serve is a standalone mode: clients submit plans (and --set\n"
                 "overrides) over the socket; only --jobs and --spool combine with it\n\n",
                 stderr);
      usage(1);
    }
    return options;
  }
  if (!options.submit_socket.empty()) {
    if (options.plan_path.empty()) {
      std::fputs("--submit needs --plan=FILE (the campaign to send)\n\n", stderr);
      usage(1);
    }
    if (!options.single_run_flags.empty() || !options.merge_out.empty() ||
        !options.jsonl_path.empty() || !options.plan_csv_path.empty() ||
        !options.journal_path.empty() || options.resume || !options.shard.empty()) {
      std::fputs("--submit sends --plan (plus --set) to the daemon, which owns the\n"
                 "journal and spool; cell JSONL streams to stdout — other campaign\n"
                 "flags do not apply\n\n",
                 stderr);
      usage(1);
    }
    return options;
  }
  if (!options.shutdown_socket.empty()) {
    if (!options.single_run_flags.empty() || !options.plan_path.empty() ||
        !options.merge_out.empty() || !options.sets.empty()) {
      std::fputs("--shutdown is a standalone mode (only --now combines with it)\n\n", stderr);
      usage(1);
    }
    return options;
  }
  if (!options.merge_out.empty()) {
    if (!options.plan_path.empty() || !options.apps.empty()) {
      std::fputs("--merge-shards is a standalone mode; it does not combine with "
                 "--plan or --app\n\n",
                 stderr);
      usage(1);
    }
    if (options.merge_inputs.empty()) {
      std::fputs("--merge-shards needs at least one input JSONL file\n\n", stderr);
      usage(1);
    }
    return options;
  }
  if (!options.merge_inputs.empty()) {
    std::fprintf(stderr, "unexpected argument: %s\n\n", options.merge_inputs.front().c_str());
    usage(1);
  }
  if (!options.plan_path.empty()) {
    if (!options.single_run_flags.empty()) {
      std::string flags;
      for (const std::string& flag : options.single_run_flags) {
        if (!flags.empty()) flags += ", ";
        flags += flag;
      }
      std::fprintf(stderr,
                   "--plan describes the whole campaign; it does not combine with %s "
                   "(use --set=KEY=VALUE to override plan-file keys)\n\n",
                   flags.c_str());
      usage(1);
    }
    if (options.resume) {
      if (options.journal_path.empty()) {
        std::fputs("--resume needs --journal=FILE (the journal to replay)\n\n", stderr);
        usage(1);
      }
      if (options.jsonl_path.empty() || options.jsonl_path == "-") {
        std::fputs("--resume needs --jsonl=FILE (a real file, not '-'): the output is\n"
                   "truncated to the last journaled offset and continued in place\n\n",
                   stderr);
        usage(1);
      }
      if (!options.plan_csv_path.empty()) {
        std::fputs("--resume does not combine with --plan-csv (a CSV cannot be resumed "
                   "mid-campaign; re-derive it from the merged JSONL)\n\n",
                   stderr);
        usage(1);
      }
    }
    return options;
  }
  if (!options.sets.empty() || !options.jsonl_path.empty() || !options.plan_csv_path.empty() ||
      !options.journal_path.empty() || options.resume || !options.shard.empty()) {
    std::fputs("--set/--jsonl/--plan-csv/--journal/--resume/--shard only apply to a "
               "--plan campaign\n\n",
               stderr);
    usage(1);
  }
  if (options.apps.empty()) {
    std::fputs("no --app given\n\n", stderr);
    usage(1);
  }
  return options;
}

Report run_once(const CliOptions& options, std::uint64_t seed, bool side_outputs) {
  StudyConfig config = options.config;
  config.seed = seed;
  if (config.cell_threads == 0) config.cell_threads = options.cell_threads;
  Study study(std::move(config));
  for (const AppSpec& spec : options.apps) study.add_app(spec.name, spec.nodes);
  if (side_outputs && options.trace_app >= 0) study.record_trace(options.trace_app);
  const Report report = study.run();
  if (side_outputs && options.trace_app >= 0) {
    study.trace(options.trace_app).save_csv(options.trace_path);
    std::fprintf(stderr, "wrote %s\n", options.trace_path.c_str());
  }
  if (side_outputs && !options.csv_prefix.empty()) {
    study.write_csv(options.csv_prefix);
    std::fprintf(stderr, "wrote %s_{apps,congestion,stall}.csv\n", options.csv_prefix.c_str());
  }
  return report;
}

/// Console companion of the file sinks: one line per finished cell, streamed
/// in cell order while later cells are still running.
class ProgressSink final : public dfly::PlanSink {
 public:
  explicit ProgressSink(std::FILE* out) : out_(out) {}

  void begin(const ExperimentPlan& plan, const std::vector<PlanCell>& cells) override {
    total_ = cells.size();
    std::fprintf(out_, "campaign '%s': %zu cells (%s)\n", plan.name.c_str(), total_,
                 to_string(plan.mode));
  }

  void cell_done(const PlanCell& cell, const Report& report) override {
    std::string what;
    switch (cell.kind) {
      case PlanCellKind::kPairwise: what = cell.target + " vs " + cell.background; break;
      case PlanCellKind::kMixedSolo: what = cell.target + " alone"; break;
      case PlanCellKind::kMixed: what = "table2 mix"; break;
      default:
        for (const PlanJob& job : cell.jobs) {
          if (!what.empty()) what += '+';
          what += job.app;
        }
    }
    std::fprintf(out_, "[%zu/%zu] %-28s %-7s %-10s seed=%llu%s%s makespan=%.3fms%s\n",
                 cell.index + 1, total_, what.c_str(), cell.config.routing.c_str(),
                 to_string(cell.config.placement),
                 static_cast<unsigned long long>(cell.config.seed),
                 cell.variant.empty() ? "" : " variant=", cell.variant.c_str(),
                 to_ms(report.makespan), report.completed ? "" : " INCOMPLETE");
    std::fflush(out_);
  }

  void cell_failed(const PlanCell& cell, const CellFailure& failure) override {
    const char* why = failure.timeout ? " (wall-clock timeout)"
                      : failure.sink_error ? " (output write failed)"
                                           : "";
    std::fprintf(out_, "[%zu/%zu] cell %zu FAILED%s after %d attempt%s: %s\n", cell.index + 1,
                 total_, cell.index, why, failure.attempts, failure.attempts == 1 ? "" : "s",
                 failure.message.c_str());
    std::fflush(out_);
  }

 private:
  std::FILE* out_;
  std::size_t total_{0};
};

int run_campaign(const CliOptions& options) {
  ConfigFile file = ConfigFile::load(options.plan_path);
  for (const auto& [key, value] : options.sets) file.set(key, value);
  const ExperimentPlan plan = plan_from_config(file);

  RunPlanOptions run_options;
  run_options.jobs = options.jobs;
  run_options.cell_threads = options.cell_threads;
  if (!options.shard.empty()) run_options.shard = parse_shard(options.shard);

  // Journal / resume (docs/ROBUSTNESS.md). Order matters: recover the
  // journal (repairing any torn tail), truncate the output back to the last
  // journaled byte, and only then open the sink in append mode.
  std::vector<JournalRecord> resume_records;
  if (options.resume) {
    resume_records = PlanJournal::recover(options.journal_path);
    const std::uint64_t offset = resume_records.empty() ? 0 : resume_records.back().offset;
    truncate_file(options.jsonl_path, offset);
    run_options.resume = &resume_records;
    std::fprintf(stderr, "resume: %zu journaled cell(s), output truncated to %llu bytes\n",
                 resume_records.size(), static_cast<unsigned long long>(offset));
  } else if (!options.journal_path.empty()) {
    // A fresh campaign must not silently append to a previous journal: the
    // cell indices would collide and a later --resume would skip work.
    std::ifstream existing(options.journal_path, std::ios::binary | std::ios::ate);
    if (existing && existing.tellg() > 0) {
      std::fprintf(stderr,
                   "dflysim: journal %s already exists and is non-empty; pass --resume to "
                   "continue that campaign, or remove the journal (and its output) to start "
                   "over\n",
                   options.journal_path.c_str());
      return 1;
    }
  }

  TeeSink sinks;
  ProgressSink progress(options.jsonl_path == "-" ? stderr : stdout);
  sinks.add(&progress);
  std::unique_ptr<JsonlSink> jsonl;
  if (!options.jsonl_path.empty()) {
    jsonl = options.jsonl_path == "-"
                ? std::make_unique<JsonlSink>(std::cout)
                : std::make_unique<JsonlSink>(options.jsonl_path, /*append=*/options.resume);
    sinks.add(jsonl.get());
  }
  std::unique_ptr<CsvSink> csv;
  if (!options.plan_csv_path.empty()) {
    csv = std::make_unique<CsvSink>(options.plan_csv_path);
    sinks.add(csv.get());
  }

  std::unique_ptr<PlanJournal> journal;
  if (!options.journal_path.empty()) {
    journal = std::make_unique<PlanJournal>(options.journal_path);
    run_options.journal = journal.get();
    if (jsonl != nullptr && options.jsonl_path != "-") {
      JsonlSink* output = jsonl.get();
      run_options.output_offset = [output] { return output->bytes_written(); };
    }
  }

  const PlanOutcome outcome = run_plan(plan, sinks, run_options);
  std::FILE* info = options.jsonl_path == "-" ? stderr : stdout;
  std::fprintf(info, "%zu/%zu cells completed", outcome.completed, outcome.cells);
  if (outcome.resumed > 0) std::fprintf(info, " (%zu resumed from journal)", outcome.resumed);
  std::fputc('\n', info);
  if (!outcome.failures.empty()) {
    std::fprintf(stderr, "%zu cell(s) failed:\n", outcome.failures.size());
    for (const CellFailure& failure : outcome.failures) {
      std::fprintf(stderr, "  cell %zu:%s %s (attempts=%d)\n", failure.index,
                   failure.timeout ? " [timeout]" : failure.sink_error ? " [sink]" : "",
                   failure.message.c_str(), failure.attempts);
    }
  }
  if (outcome.worker_errors.any()) {
    std::fprintf(stderr, "infrastructure errors: %s\n",
                 outcome.worker_errors.summary().c_str());
  }
  if (!options.jsonl_path.empty() && options.jsonl_path != "-") {
    std::fprintf(stderr, "wrote %s\n", options.jsonl_path.c_str());
  }
  if (!options.plan_csv_path.empty()) {
    std::fprintf(stderr, "wrote %s\n", options.plan_csv_path.c_str());
  }
  return outcome.all_ok() ? 0 : 2;
}

#ifndef _WIN32
/// SIGINT/SIGTERM ask the daemon's accept loop to stop (drain semantics);
/// request_stop is one lock-free atomic store, so it is signal-safe.
std::atomic<serve::Server*> g_server{nullptr};

void handle_stop_signal(int) {
  if (serve::Server* server = g_server.load(std::memory_order_relaxed)) {
    server->request_stop();
  }
}

int run_serve(const CliOptions& options) {
  serve::ServeOptions serve_options;
  serve_options.socket_path = options.serve_socket;
  serve_options.spool_dir = options.spool_dir;
  serve_options.jobs = options.jobs;
  serve::Server server(std::move(serve_options));
  g_server.store(&server, std::memory_order_relaxed);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  std::fprintf(stderr, "dflysim: serving on %s (spool %s, %d job%s)\n",
               server.socket_path().c_str(), server.spool_dir().c_str(), server.jobs(),
               server.jobs() == 1 ? "" : "s");
  const int status = server.serve();
  g_server.store(nullptr, std::memory_order_relaxed);
  std::fprintf(stderr, "dflysim: daemon on %s stopped\n", options.serve_socket.c_str());
  return status;
}

int run_submit(const CliOptions& options) {
  // Ship the plan file's raw text; the daemon parses it (and applies the
  // --set overrides) so errors come back as one {"serve":"error"} line.
  std::ifstream in(options.plan_path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read plan file '" + options.plan_path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return serve::submit_plan(options.submit_socket, text.str(), options.sets, stdout, stderr);
}
#endif  // !_WIN32

int run_merge(const CliOptions& options) {
  const std::size_t lines = merge_shard_jsonl(options.merge_inputs, options.merge_out,
                                              &std::cerr);
  std::fprintf(stderr, "merged %zu cell line(s) from %zu shard file(s) into %s\n", lines,
               options.merge_inputs.size(), options.merge_out.c_str());
  return 0;
}

void print_table(const Report& report) {
  viz::AsciiTable out({"app", "nodes", "comm_ms", "sigma_ms", "exec_ms", "inj_GB/s",
                       "lat_p99_us", "nonmin"});
  char buffer[32];
  for (const AppReport& app : report.apps) {
    std::vector<std::string> cells{app.app, std::to_string(app.nodes)};
    for (const double v : {app.comm_mean_ms, app.comm_std_ms, app.exec_ms,
                           app.injection_rate_gbs, app.lat_p99_us, app.nonminimal_fraction}) {
      std::snprintf(buffer, sizeof buffer, "%.3f", v);
      cells.emplace_back(buffer);
    }
    out.row(std::move(cells));
  }
  std::fputs(out.str().c_str(), stdout);
  std::printf("routing %s | completed %s | makespan %.3f ms | sys p99 %.2f us | "
              "throughput %.3f GB/ms\n",
              report.routing.c_str(), report.completed ? "yes" : "no",
              to_ms(report.makespan), report.sys_lat_p99_us, report.agg_throughput_gb_per_ms);
}

}  // namespace

int main(int argc, char** argv) {
#ifndef _WIN32
  // A campaign piped into `head` (or a submit client that hung up) must show
  // up as a write error — recorded as a sink_error cell failure / campaign
  // cancellation — not kill the process with SIGPIPE mid-journal.
  std::signal(SIGPIPE, SIG_IGN);
#endif
  try {
    const CliOptions options = parse_cli(argc, argv);
#ifndef _WIN32
    if (!options.serve_socket.empty()) return run_serve(options);
    if (!options.submit_socket.empty()) return run_submit(options);
    if (!options.shutdown_socket.empty()) {
      return serve::request_shutdown(options.shutdown_socket, !options.shutdown_now, stderr);
    }
#endif
    if (!options.merge_out.empty()) return run_merge(options);
    if (!options.plan_path.empty()) return run_campaign(options);
    if (options.sweep <= 1) {
      const Report report = run_once(options, options.config.seed, /*side_outputs=*/true);
      print_table(report);
      if (!options.json_path.empty()) {
        const std::string json = report_to_json(report);
        if (options.json_path == "-") {
          std::printf("%s\n", json.c_str());
        } else {
          save_json(options.json_path, json);
          std::fprintf(stderr, "wrote %s\n", options.json_path.c_str());
        }
      }
      return report.completed ? 0 : 2;
    }
    // Multi-seed sweep: the cells shard across --jobs workers (results are
    // identical for any worker count); aggregate, print, optionally dump JSON.
    const SeedSweep sweep(options.config.seed, options.sweep);
    const SweepSummary summary = sweep.run(
        [&options](std::uint64_t seed) { return run_once(options, seed, false); },
        options.jobs);
    viz::AsciiTable table({"app", "comm_ms mean", "ci95", "min", "max"});
    for (const AppSweep& app : summary.apps) {
      table.row(app.app, {app.comm_ms.mean, app.comm_ms.ci95_half, app.comm_ms.min,
                          app.comm_ms.max});
    }
    std::fputs(table.str().c_str(), stdout);
    std::printf("%d/%d runs completed | makespan %.3f +/- %.3f ms\n", summary.completed_runs,
                summary.runs, summary.makespan_ms.mean, summary.makespan_ms.ci95_half);
    if (!options.json_path.empty()) {
      const std::string json = sweep_to_json(summary);
      if (options.json_path == "-") {
        std::printf("%s\n", json.c_str());
      } else {
        save_json(options.json_path, json);
      }
    }
    return summary.completed_runs == summary.runs ? 0 : 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "dflysim: %s\n", error.what());
    return 1;
  }
}

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/study.hpp"

/// Flat `key = value` configuration files for the experiment binaries.
///
/// Every bench accepts `--config=FILE` (and `dflysim` additionally accepts
/// `--plan=FILE`, see core/plan.hpp) so the paper system — and any variant —
/// can be described declaratively instead of recompiled. Format:
///
///     # paper.cfg — the 1,056-node SC'22 system
///     topo.p = 4
///     topo.a = 8
///     topo.h = 4
///     topo.g = 33
///     routing = Q-adp
///     placement = random
///     seed = 42
///     net.buffer_packets = 30
///     qos.num_classes = 2
///     qos.weights = 4,1
///     cc.enabled = true
///
/// Lines starting with `#` or `;` are comments; whitespace is trimmed;
/// duplicate keys are rejected (naming both lines) and unknown keys are
/// rejected by `apply_config` (typo safety).
namespace dfly {

class ConfigFile {
 public:
  ConfigFile() = default;

  /// Parse from a file (throws std::runtime_error on IO failure or syntax
  /// errors — no '=', empty key, duplicate key; messages name the offending
  /// line number) or from an in-memory string.
  static ConfigFile load(const std::string& path);
  static ConfigFile parse(const std::string& text);

  bool has(const std::string& key) const { return values_.count(key) > 0; }
  /// 1-based source line of `key` (0 = set programmatically or absent).
  int line_of(const std::string& key) const;
  /// "line N" when the key has a source line, else "key 'K'" — the prefix
  /// every value-error message uses so config mistakes point at the file.
  std::string where(const std::string& key) const;

  /// Typed getters; the default is returned when the key is absent. Throws
  /// std::invalid_argument when a present value fails to convert; the
  /// message names the source line when the key came from a file.
  std::string get_string(const std::string& key, const std::string& fallback = "") const;
  int get_int(const std::string& key, int fallback = 0) const;
  double get_double(const std::string& key, double fallback = 0.0) const;
  /// Accepts true/false/1/0/yes/no/on/off (case-insensitive).
  bool get_bool(const std::string& key, bool fallback = false) const;
  /// Comma-separated integer list.
  std::vector<int> get_int_list(const std::string& key) const;
  /// Comma-separated string list (items trimmed; empty items rejected).
  std::vector<std::string> get_string_list(const std::string& key) const;
  /// Comma-separated seed list where each item is either one seed (`42`) or
  /// an inclusive range (`42..46`). Errors name the offending line.
  std::vector<std::uint64_t> get_seed_list(const std::string& key) const;

  void set(const std::string& key, const std::string& value, int line = 0) {
    values_[key] = value;
    lines_[key] = line;
  }
  const std::map<std::string, std::string>& values() const { return values_; }

  /// Re-emit as parseable `key = value` text (keys in sorted order). A
  /// ConfigFile survives parse(emit()) exactly.
  std::string emit() const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, int> lines_;  ///< 1-based source line per key
};

/// Overlay a config file onto a StudyConfig. Recognised keys:
///   topo.{p,a,h,g}            Dragonfly shape
///   topo.arrangement          relative/absolute global-link wiring
///   routing                   MIN/VALg/VALn/UGALg/UGALn/PAR/Q-adp/...
///   placement                 random/contiguous/linear
///   seed, scale               run knobs
///   time_limit_ms             simulation guard (simulated clock)
///   wall_limit_s              cooperative real-time watchdog (0 = off)
///   net.{flit_bytes,packet_bytes,buffer_packets,num_vcs,link_gbps}
///   net.{local_latency_ns,global_latency_ns,router_latency_ns}
///   protocol.{eager_threshold,control_bytes}  eager/rendezvous split
///   qos.{num_classes,weights,quantum_packets}
///   cc.{enabled,ecn_threshold_packets,md_factor,ai_step,min_rate}
///   qadp.{alpha,epsilon,queue_weight}         Q-adaptive hyperparameters
///   ugal.{bias,nonmin_weight,min_candidates,nonmin_candidates}
///   faults                    router:port:slowdown[:extra_ns],...
/// Unknown keys throw std::invalid_argument (naming the source line when the
/// file was parsed from text). `plan.*` keys belong to plan_from_config
/// (core/plan.hpp) and are rejected here.
StudyConfig apply_config(StudyConfig base, const ConfigFile& file);

/// The exact inverse of apply_config: emit every accepted key from `config`
/// (the `faults` key is omitted when the plan is empty). Both directions are
/// driven by one key table, so
///   apply_config(StudyConfig{}, ConfigFile::parse(config_to_file(c).emit()))
/// reproduces `c` for every key (time_limit at millisecond granularity).
ConfigFile config_to_file(const StudyConfig& config);

}  // namespace dfly

// Figure 4 (a)-(f): pairwise workload interference. For each of the six
// target applications, co-run with each background application under each
// routing and report the target's mean per-rank communication time and the
// standard deviation across ranks (the figure's bars and whiskers).
//
// The whole figure is one declarative ExperimentPlan — a routings axis over
// a target x background matrix — expanded and executed by the unified
// campaign core (core/plan.hpp), which shards the independent cells across
// worker threads. The same campaign is available without recompiling as
// examples/fig4_campaign.cfg via `dflysim --plan`.

#include "bench_common.hpp"
#include "core/json_report.hpp"
#include "core/pairwise.hpp"
#include "core/plan.hpp"

int main(int argc, char** argv) {
  using namespace dfly;
  const bench::Options options =
      bench::Options::parse(argc, argv, 96, {.json = true, .smoke = true});
  const auto routings = options.routings();

  // --smoke (CI): one target, standalone + one hot background — enough to
  // exercise the whole pipeline and produce a non-trivial interference delta.
  std::vector<std::string> targets = fig4_targets();
  std::vector<std::string> backgrounds = fig4_backgrounds();
  if (options.smoke) {
    targets = {targets.front()};
    backgrounds = {"None", "UR"};
  }

  ExperimentPlan plan;
  plan.name = "fig4_pairwise";
  plan.base = options.config(routings.front());
  plan.mode = PlanMode::kPairwise;
  plan.routings = routings;
  plan.targets = targets;
  plan.backgrounds = backgrounds;

  CollectSink sink;
  run_plan(plan, sink, bench::default_jobs());
  const std::vector<PlanCell>& cells = sink.cells();
  const std::vector<Report>& results = sink.reports();

  // Expansion order is routing-major (routing > target > background); the
  // paper's panels are target-major, so index cells by axis position.
  const auto cell_at = [&](std::size_t r, std::size_t t, std::size_t b) -> const Report& {
    return results[(r * targets.size() + t) * backgrounds.size() + b];
  };

  bench::print_header("Figure 4 — pairwise interference: target comm time mean (sigma), ms");
  for (std::size_t t = 0; t < targets.size(); ++t) {
    std::printf("\n--- target: %s ---\n", targets[t].c_str());
    std::printf("%-10s", "routing");
    for (const std::string& bg : backgrounds) std::printf(" %18s", bg.c_str());
    std::printf("\n");
    for (std::size_t r = 0; r < routings.size(); ++r) {
      std::printf("%-10s", routings[r].c_str());
      double standalone = 0;
      for (std::size_t b = 0; b < backgrounds.size(); ++b) {
        const Report& report = cell_at(r, t, b);
        const AppReport& target = report.apps.front();
        if (backgrounds[b] == "None") standalone = target.comm_mean_ms;
        char text[64];
        if (backgrounds[b] == "None" || standalone <= 0) {
          std::snprintf(text, sizeof text, "%.2f(%.2f)%s", target.comm_mean_ms,
                        target.comm_std_ms, report.completed ? "" : "!");
        } else {
          std::snprintf(text, sizeof text, "%.2f(%.2f)%+.0f%%%s", target.comm_mean_ms,
                        target.comm_std_ms,
                        (target.comm_mean_ms / standalone - 1.0) * 100.0,
                        report.completed ? "" : "!");
        }
        std::printf(" %18s", text);
      }
      std::printf("\n");
    }
  }
  std::printf("\nExpected shape (paper): Halo3D and DL (highest injection rates) delay\n"
              "low-rate targets 2-3x under adaptive routing; Q-adp cuts both the delay and\n"
              "the variation sharply; LQCD/Stencil5D (largest peak ingress) barely move.\n");

  if (!options.json_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.key("bench").value("fig4_pairwise");
    w.key("scale").value(options.scale);
    w.key("seed").value(options.seed);
    w.key("cells").begin_array();
    for (const PlanCell& cell : cells) {
      const AppReport& target = results[cell.index].apps.front();
      w.begin_object();
      w.key("target").value(cell.target);
      w.key("background").value(cell.background);
      w.key("routing").value(cell.config.routing);
      w.key("comm_mean_ms").value(target.comm_mean_ms);
      w.key("comm_std_ms").value(target.comm_std_ms);
      w.key("completed").value(results[cell.index].completed);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    try {
      save_json(options.json_path, w.str());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", options.json_path.c_str());
  }
  return 0;
}

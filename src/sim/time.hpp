#pragma once

#include <cstdint>

namespace dfly {

/// Simulated time in picoseconds. Signed so durations/differences are safe.
/// int64 picoseconds covers ~106 days of simulated time, far beyond any run.
using SimTime = std::int64_t;

inline constexpr SimTime kPs = 1;
inline constexpr SimTime kNs = 1000 * kPs;
inline constexpr SimTime kUs = 1000 * kNs;
inline constexpr SimTime kMs = 1000 * kUs;
inline constexpr SimTime kSec = 1000 * kMs;

/// Convert picoseconds to floating-point convenience units.
constexpr double to_ns(SimTime t) { return static_cast<double>(t) / static_cast<double>(kNs); }
constexpr double to_us(SimTime t) { return static_cast<double>(t) / static_cast<double>(kUs); }
constexpr double to_ms(SimTime t) { return static_cast<double>(t) / static_cast<double>(kMs); }

/// Time to serialise `bytes` onto a link of `gbps` gigabits/second, in ps.
/// 1 byte at 1 Gb/s = 8 ns = 8000 ps.
constexpr SimTime serialization_ps(std::int64_t bytes, double gbps) {
  return static_cast<SimTime>(static_cast<double>(bytes) * 8000.0 / gbps);
}

}  // namespace dfly

#include "mpi/task.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dfly::mpi {
namespace {

Task trivial(int& counter) {
  ++counter;
  co_return;
}

Task nested_child(std::vector<int>& log) {
  log.push_back(2);
  co_return;
}

Task nested_parent(std::vector<int>& log) {
  log.push_back(1);
  co_await nested_child(log);
  log.push_back(3);
}

Task deeply_nested(std::vector<int>& log, int depth) {
  log.push_back(depth);
  if (depth > 0) co_await deeply_nested(log, depth - 1);
}

TEST(Task, LazyUntilStarted) {
  int counter = 0;
  Task task = trivial(counter);
  EXPECT_EQ(counter, 0);
  EXPECT_FALSE(task.done());
  task.start();
  EXPECT_EQ(counter, 1);
  EXPECT_TRUE(task.done());
}

TEST(Task, NestedAwaitRunsInOrder) {
  std::vector<int> log;
  Task task = nested_parent(log);
  task.start();
  EXPECT_TRUE(task.done());
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Task, DeepNestingViaSymmetricTransfer) {
  std::vector<int> log;
  Task task = deeply_nested(log, 200);
  task.start();
  EXPECT_TRUE(task.done());
  EXPECT_EQ(log.size(), 201u);
  EXPECT_EQ(log.front(), 200);
  EXPECT_EQ(log.back(), 0);
}

TEST(Task, MoveTransfersOwnership) {
  int counter = 0;
  Task a = trivial(counter);
  Task b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  b.start();
  EXPECT_EQ(counter, 1);
}

TEST(Task, MoveAssignDestroysPrevious) {
  int c1 = 0, c2 = 0;
  Task a = trivial(c1);
  a = trivial(c2);  // original frame destroyed without running
  a.start();
  EXPECT_EQ(c1, 0);
  EXPECT_EQ(c2, 1);
}

TEST(Task, DefaultConstructedIsDone) {
  Task task;
  EXPECT_FALSE(task.valid());
  EXPECT_TRUE(task.done());
}

}  // namespace
}  // namespace dfly::mpi

// Global-link arrangement tests: the relative and absolute wirings must
// both produce a consistent, fully connected inter-group fabric (Hastings
// et al. CLUSTER'15 — same pair-wise link counts, different placement of
// each link inside the group).

#include <gtest/gtest.h>

#include <set>

#include "core/study.hpp"
#include "topo/dragonfly.hpp"
#include "workloads/motifs.hpp"

namespace dfly {
namespace {

TEST(Arrangement, StringRoundTrip) {
  EXPECT_STREQ(to_string(GlobalArrangement::kRelative), "relative");
  EXPECT_STREQ(to_string(GlobalArrangement::kAbsolute), "absolute");
  EXPECT_EQ(arrangement_from_string("relative"), GlobalArrangement::kRelative);
  EXPECT_EQ(arrangement_from_string("absolute"), GlobalArrangement::kAbsolute);
  EXPECT_THROW(arrangement_from_string("spiral"), std::invalid_argument);
}

class ArrangementWiring : public ::testing::TestWithParam<GlobalArrangement> {
 protected:
  DragonflyParams params() const {
    DragonflyParams p = DragonflyParams::tiny();
    p.arrangement = GetParam();
    return p;
  }
};

/// Every global wire must be symmetric: following it there and back returns
/// to the same (router, port).
TEST_P(ArrangementWiring, GlobalWiresAreSymmetric) {
  const Dragonfly topo(params());
  for (int r = 0; r < topo.num_routers(); ++r) {
    for (int k = 0; k < topo.params().h; ++k) {
      const GlobalEndpoint far = topo.global_peer(r, k);
      ASSERT_GE(far.router, 0);
      ASSERT_LT(far.router, topo.num_routers());
      const GlobalEndpoint back = topo.global_peer(far.router, far.global_port);
      EXPECT_EQ(back.router, r) << r << ":" << k;
      EXPECT_EQ(back.global_port, k) << r << ":" << k;
      // The far end must live in the group this port claims to reach.
      EXPECT_EQ(topo.group_of_router(far.router), topo.group_reached_by(r, k));
    }
  }
}

/// Every group pair gets exactly links_per_group_pair global links, and a
/// group never wires to itself.
TEST_P(ArrangementWiring, EveryGroupPairFullyConnected) {
  const Dragonfly topo(params());
  const int g = topo.num_groups();
  for (int src = 0; src < g; ++src) {
    int total = 0;
    for (int dst = 0; dst < g; ++dst) {
      const auto& gws = topo.gateways(src, dst);
      if (src == dst) {
        EXPECT_TRUE(gws.empty());
        continue;
      }
      EXPECT_EQ(static_cast<int>(gws.size()), topo.links_per_group_pair()) << src << "->" << dst;
      total += static_cast<int>(gws.size());
      for (const GlobalEndpoint& ep : gws) {
        EXPECT_EQ(topo.group_of_router(ep.router), src);
        EXPECT_EQ(topo.group_reached_by(ep.router, ep.global_port), dst);
      }
    }
    EXPECT_EQ(total, topo.params().a * topo.params().h);
  }
}

/// wire() round-trips for every non-terminal port under both arrangements.
TEST_P(ArrangementWiring, WireRoundTrip) {
  const Dragonfly topo(params());
  for (int r = 0; r < topo.num_routers(); ++r) {
    for (int port = topo.first_local_port(); port < topo.radix(); ++port) {
      const Dragonfly::Wire out = topo.wire(r, port);
      const Dragonfly::Wire back = topo.wire(out.peer_router, out.peer_port);
      EXPECT_EQ(back.peer_router, r);
      EXPECT_EQ(back.peer_port, port);
    }
  }
}

/// Traffic must flow end to end under both arrangements and several
/// routings (the arrangement changes gateway placement, not reachability).
TEST_P(ArrangementWiring, TrafficDeliversUnderEveryRouting) {
  for (const std::string routing : {"MIN", "UGALn", "Q-adp"}) {
    StudyConfig config;
    config.topo = params();
    config.routing = routing;
    config.seed = 13;
    Study study(config);
    workloads::UniformRandomParams ur;
    ur.iterations = 25;
    ur.window = 8;
    ur.interval = 0;
    study.add_motif(std::make_unique<workloads::UniformRandomMotif>(ur),
                    config.topo.num_nodes(), "UR");
    const Report report = study.run();
    EXPECT_TRUE(report.completed) << to_string(GetParam()) << "/" << routing;
  }
}

INSTANTIATE_TEST_SUITE_P(Both, ArrangementWiring,
                         ::testing::Values(GlobalArrangement::kRelative,
                                           GlobalArrangement::kAbsolute),
                         [](const auto& info) { return std::string(to_string(info.param)); });

/// The arrangements place the same group-pair link on different routers —
/// otherwise they would be one arrangement, not two.
TEST(Arrangement, PlacementsActuallyDiffer) {
  DragonflyParams relative = DragonflyParams::tiny();
  DragonflyParams absolute = relative;
  absolute.arrangement = GlobalArrangement::kAbsolute;
  const Dragonfly topo_rel(relative);
  const Dragonfly topo_abs(absolute);
  int differing = 0;
  for (int src = 0; src < topo_rel.num_groups(); ++src) {
    for (int dst = 0; dst < topo_rel.num_groups(); ++dst) {
      if (src == dst) continue;
      if (topo_rel.gateways(src, dst)[0].router != topo_abs.gateways(src, dst)[0].router) {
        ++differing;
      }
    }
  }
  EXPECT_GT(differing, 0);
}

/// Spot-check the absolute mapping on a hand-computable case: group 0's
/// slots enumerate groups 1..g-1 in order; group 2's slots enumerate
/// 0, 1, 3, 4, ...
TEST(Arrangement, AbsoluteMappingSpotChecks) {
  DragonflyParams p = DragonflyParams::tiny();  // a=4, h=2 -> 8 slots, g=9
  p.arrangement = GlobalArrangement::kAbsolute;
  const Dragonfly topo(p);
  // Router 0 (group 0, local 0): slots 0,1 -> groups 1,2.
  EXPECT_EQ(topo.group_reached_by(0, 0), 1);
  EXPECT_EQ(topo.group_reached_by(0, 1), 2);
  // Group 2, local 0 (router 8): slots 0,1 -> groups 0,1 (skip self at 2).
  const int router8 = topo.router_id(2, 0);
  EXPECT_EQ(topo.group_reached_by(router8, 0), 0);
  EXPECT_EQ(topo.group_reached_by(router8, 1), 1);
  // Group 2, local 1: slots 2,3 -> groups 3,4.
  const int router9 = topo.router_id(2, 1);
  EXPECT_EQ(topo.group_reached_by(router9, 0), 3);
  EXPECT_EQ(topo.group_reached_by(router9, 1), 4);
}

}  // namespace
}  // namespace dfly

#include "topo/dragonfly.hpp"

#include <string>

namespace dfly {

const char* to_string(GlobalArrangement arrangement) {
  switch (arrangement) {
    case GlobalArrangement::kRelative: return "relative";
    case GlobalArrangement::kAbsolute: return "absolute";
  }
  return "?";
}

GlobalArrangement arrangement_from_string(const std::string& name) {
  if (name == "relative") return GlobalArrangement::kRelative;
  if (name == "absolute") return GlobalArrangement::kAbsolute;
  throw std::invalid_argument("unknown global arrangement: " + name);
}

Dragonfly::Dragonfly(DragonflyParams params) : params_(params) {
  if (params_.p < 1 || params_.a < 2 || params_.h < 1 || params_.g < 2) {
    throw std::invalid_argument("Dragonfly: require p>=1, a>=2, h>=1, g>=2");
  }
  const int slots = params_.a * params_.h;
  if (slots % (params_.g - 1) != 0) {
    throw std::invalid_argument(
        "Dragonfly: a*h must be a multiple of g-1 (got a*h=" + std::to_string(slots) +
        ", g-1=" + std::to_string(params_.g - 1) + ")");
  }
  links_per_pair_ = slots / (params_.g - 1);

  gateways_.assign(static_cast<std::size_t>(params_.g) * params_.g, {});
  for (int grp = 0; grp < params_.g; ++grp) {
    for (int local = 0; local < params_.a; ++local) {
      const int router = router_id(grp, local);
      for (int k = 0; k < params_.h; ++k) {
        const int dst = group_reached_by(router, k);
        gateways_[static_cast<std::size_t>(grp) * params_.g + dst].push_back(
            GlobalEndpoint{router, k});
      }
    }
  }
}

int Dragonfly::local_port_to(int router, int peer_local) const {
  const int self = local_index(router);
  return first_local_port() + (peer_local < self ? peer_local : peer_local - 1);
}

int Dragonfly::local_peer_of_port(int router, int port) const {
  const int self = local_index(router);
  const int idx = port - first_local_port();
  return idx < self ? idx : idx + 1;
}

int Dragonfly::group_reached_by(int router, int k) const {
  const int grp = group_of_router(router);
  const int slot = local_index(router) * params_.h + k;
  const int offset = slot % (params_.g - 1);
  if (params_.arrangement == GlobalArrangement::kAbsolute) {
    return offset < grp ? offset : offset + 1;  // enumerate groups, skip self
  }
  return (grp + 1 + offset) % params_.g;
}

GlobalEndpoint Dragonfly::global_peer(int router, int k) const {
  const int grp = group_of_router(router);
  const int slot = local_index(router) * params_.h + k;
  const int offset = slot % (params_.g - 1);
  const int rep = slot / (params_.g - 1);
  int peer_group = 0;
  int peer_offset = 0;
  if (params_.arrangement == GlobalArrangement::kAbsolute) {
    // Group T's slot for reaching back to G is G's position in T's
    // self-skipping enumeration of the other groups.
    peer_group = offset < grp ? offset : offset + 1;
    peer_offset = grp < peer_group ? grp : grp - 1;
  } else {
    peer_group = (grp + 1 + offset) % params_.g;
    peer_offset = params_.g - 2 - offset;
  }
  const int peer_slot = rep * (params_.g - 1) + peer_offset;
  return GlobalEndpoint{router_id(peer_group, peer_slot / params_.h), peer_slot % params_.h};
}

const std::vector<GlobalEndpoint>& Dragonfly::gateways(int src_group, int dst_group) const {
  if (src_group == dst_group) return empty_;
  return gateways_[static_cast<std::size_t>(src_group) * params_.g + dst_group];
}

Dragonfly::Wire Dragonfly::wire(int router, int port) const {
  if (is_local_port(port)) {
    const int peer_local = local_peer_of_port(router, port);
    const int peer = router_id(group_of_router(router), peer_local);
    return Wire{peer, local_port_to(peer, local_index(router)), false};
  }
  if (is_global_port(port)) {
    const int k = port - first_global_port();
    const GlobalEndpoint far = global_peer(router, k);
    return Wire{far.router, global_port(far.global_port), true};
  }
  return Wire{};  // terminal ports connect to NICs, not routers
}

}  // namespace dfly

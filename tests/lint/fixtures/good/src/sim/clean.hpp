#pragma once

#include <cstdint>
#include <vector>

namespace fixture {

// Hot-directory code built on flat containers: nothing here may fire.
struct HotState {
  std::vector<std::uint64_t> ids;
  // A comment naming std::function or std::unordered_map must not fire.
  std::uint64_t count{0};
};

// Inline allows silence a deliberate exception on the same line:
#include <deque>
struct Suppressed {
  std::deque<int> warm_;  // dfsim-lint: allow(alloc-churn) fixture: setup-phase only
};

}  // namespace fixture

#include "topo/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace dfly {
namespace {

TEST(Placement, PolicyNamesRoundTrip) {
  for (const auto policy : {PlacementPolicy::kRandom, PlacementPolicy::kContiguous,
                            PlacementPolicy::kLinear}) {
    EXPECT_EQ(placement_from_string(to_string(policy)), policy);
  }
  EXPECT_THROW(placement_from_string("bogus"), std::invalid_argument);
}

TEST(Placement, LinearAllocatesInIdOrder) {
  const Dragonfly topo(DragonflyParams::tiny());
  Placer placer(topo, PlacementPolicy::kLinear, Rng(1));
  const auto nodes = placer.allocate(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(nodes[static_cast<std::size_t>(i)], i);
}

TEST(Placement, RandomIsDeterministicPerSeed) {
  const Dragonfly topo(DragonflyParams::tiny());
  Placer a(topo, PlacementPolicy::kRandom, Rng(42));
  Placer b(topo, PlacementPolicy::kRandom, Rng(42));
  EXPECT_EQ(a.allocate(20), b.allocate(20));
}

TEST(Placement, RandomDiffersAcrossSeeds) {
  const Dragonfly topo(DragonflyParams::tiny());
  Placer a(topo, PlacementPolicy::kRandom, Rng(1));
  Placer b(topo, PlacementPolicy::kRandom, Rng(2));
  EXPECT_NE(a.allocate(20), b.allocate(20));
}

TEST(Placement, AllocationsAreDisjoint) {
  const Dragonfly topo(DragonflyParams::tiny());
  Placer placer(topo, PlacementPolicy::kRandom, Rng(7));
  const auto first = placer.allocate(30);
  const auto second = placer.allocate(30);
  std::set<int> seen(first.begin(), first.end());
  for (const int n : second) EXPECT_FALSE(seen.count(n)) << n;
}

TEST(Placement, ThrowsWhenFull) {
  const Dragonfly topo(DragonflyParams::tiny());
  Placer placer(topo, PlacementPolicy::kLinear, Rng(1));
  placer.allocate(topo.num_nodes());
  EXPECT_EQ(placer.free_nodes(), 0);
  EXPECT_THROW(placer.allocate(1), std::runtime_error);
}

TEST(Placement, ReleaseMakesNodesReusable) {
  const Dragonfly topo(DragonflyParams::tiny());
  Placer placer(topo, PlacementPolicy::kLinear, Rng(1));
  const auto nodes = placer.allocate(topo.num_nodes());
  placer.release(nodes);
  EXPECT_EQ(placer.free_nodes(), topo.num_nodes());
  EXPECT_EQ(static_cast<int>(placer.allocate(5).size()), 5);
}

TEST(Placement, ReleaseUnallocatedThrows) {
  const Dragonfly topo(DragonflyParams::tiny());
  Placer placer(topo, PlacementPolicy::kLinear, Rng(1));
  EXPECT_THROW(placer.release({0}), std::runtime_error);
}

TEST(Placement, ContiguousFillsGroupsInOrder) {
  const Dragonfly topo(DragonflyParams::tiny());  // 8 nodes per group
  Placer placer(topo, PlacementPolicy::kContiguous, Rng(1));
  const auto nodes = placer.allocate(topo.params().p * topo.params().a);
  std::set<int> groups;
  for (const int n : nodes) groups.insert(topo.group_of_node(n));
  EXPECT_EQ(groups.size(), 1u);  // exactly one group filled
}

TEST(Placement, RandomSpreadsAcrossGroups) {
  const Dragonfly topo(DragonflyParams::paper());
  Placer placer(topo, PlacementPolicy::kRandom, Rng(3));
  const auto nodes = placer.allocate(256);
  std::set<int> groups;
  for (const int n : nodes) groups.insert(topo.group_of_node(n));
  EXPECT_GT(groups.size(), 20u);  // 256 random nodes hit most of 33 groups
}

}  // namespace
}  // namespace dfly

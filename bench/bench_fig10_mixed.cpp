// Figure 10 (a)-(f) + Table II: mixed-workload interference. Six
// applications share the full 1,056-node system; each panel compares an
// application's communication time when running alone (same placement) vs
// inside the mix, across the four routings.
//
// The whole figure is one declarative ExperimentPlan — a routings axis in
// mixed mode (the Table II mix plus per-app solo baselines) — expanded and
// executed by the unified campaign core (core/plan.hpp), which flattens
// (routing, cell) into one worker pool (honours --jobs / DFSIM_JOBS).

#include "bench_common.hpp"
#include "core/mixed.hpp"
#include "core/plan.hpp"

int main(int argc, char** argv) {
  using namespace dfly;
  const bench::Options options = bench::Options::parse(argc, argv, 64);
  const auto routings = options.routings();

  ExperimentPlan plan;
  plan.name = "fig10_mixed";
  plan.base = options.config(routings.front());
  plan.mode = PlanMode::kMixed;
  plan.routings = routings;
  plan.mixed_solos = true;

  CollectSink sink;
  run_plan(plan, sink, bench::default_jobs());

  // Expansion per routing: the full mix first, then each solo baseline in
  // table2_mix order — regroup the flat cell list into per-routing suites.
  const std::size_t stride = 1 + table2_mix().size();
  std::vector<MixedSuite> suites(routings.size());
  for (std::size_t r = 0; r < routings.size(); ++r) {
    suites[r].mix = sink.reports()[r * stride];
    for (std::size_t a = 1; a < stride; ++a) {
      suites[r].solos.push_back(sink.reports()[r * stride + a]);
    }
  }

  bench::print_header("Figure 10 / Table II — mixed workload comm time (ms): alone vs mixed");
  std::printf("Table II job sizes:");
  for (const auto& spec : table2_mix()) std::printf(" %s=%d", spec.app.c_str(), spec.nodes);
  std::printf("\n\n%-10s %-10s %12s %12s %12s %12s\n", "routing", "app", "alone", "sigma",
              "mixed", "sigma");
  bench::print_rule();

  for (std::size_t r = 0; r < routings.size(); ++r) {
    const Report& mixed = suites[r].mix;
    double interference_sum = 0;
    int interference_count = 0;
    for (std::size_t a = 0; a < table2_mix().size(); ++a) {
      const auto& spec = table2_mix()[a];
      const Report& solo = suites[r].solos[a];
      const AppReport& alone = solo.app(spec.app);
      const AppReport& in_mix = mixed.app(spec.app);
      std::printf("%-10s %-10s %12.3f %12.3f %12.3f %12.3f  (%+.1f%%)\n",
                  routings[r].c_str(), spec.app.c_str(), alone.comm_mean_ms, alone.comm_std_ms,
                  in_mix.comm_mean_ms, in_mix.comm_std_ms,
                  (in_mix.comm_mean_ms / alone.comm_mean_ms - 1.0) * 100.0);
      if (spec.app != "Stencil5D") {
        interference_sum += in_mix.comm_mean_ms / alone.comm_mean_ms - 1.0;
        ++interference_count;
      }
    }
    std::printf("%-10s mean interference over non-Stencil5D apps: %+.1f%%\n\n",
                routings[r].c_str(), interference_sum / interference_count * 100.0);
  }
  std::printf("Expected shape (paper): ~+96%% mean comm-time under adaptive routings for the\n"
              "small-burst apps, roughly halved by Q-adp; Stencil5D <2%%, LQCD moderate.\n");
  return 0;
}

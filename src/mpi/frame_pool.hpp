#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// Freelist allocator for mpi::Task coroutine frames.
///
/// Every simulated rank is a coroutine, and every collective call spawns
/// nested Task frames, so a cell creates frames constantly. The pool keeps
/// that off the allocator: Task::promise_type routes its `operator new`
/// through the pool bound to the current thread, freed frames park in
/// size-bucketed freelists, and the next wave (or the next same-shape cell
/// on the worker) re-uses them — steady-state cells allocate no new frames.
/// This is one leg of the MPI-layer recycling story; docs/MEMORY.md has the
/// measured numbers and docs/ARCHITECTURE.md the lifecycle.
///
/// The pool is fed from the worker's SimArena (core/arena.hpp owns one and
/// ScopedArenaBinding binds it alongside the arena), giving frames the same
/// lifecycle as the rest of the carried storage: first cell grows the pool
/// to its high-water mark, later cells recycle, the pool frees everything
/// when the worker retires. With no pool bound (or --no-arena), frames fall
/// back to plain operator new/delete.
///
/// Safety: every block is an individually heap-allocated allocation with a
/// small header recording its bucket, so a block may be parked in any pool
/// (or plain-freed when none is bound) regardless of which pool produced it
/// — there is no carve-out slab whose owner must outlive the frame. Frames
/// never cross threads (cells are thread-confined), and a frame allocated
/// without a pool is tagged bucket 0 and always plain-freed.
namespace dfly::mpi {

class FramePool {
 public:
  FramePool() = default;
  ~FramePool();
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  /// The pool bound to the calling thread (nullptr = plain heap frames).
  static FramePool* current();

  /// Allocation entry points used by Task::promise_type. `allocate` serves
  /// from the bound pool when one exists; `deallocate` parks poolable blocks
  /// in the bound pool, else frees them.
  static void* allocate(std::size_t bytes);
  static void deallocate(void* frame) noexcept;

  /// Frames handed out from a freelist vs. freshly heap-allocated while this
  /// pool was bound (bench_memory reports the split).
  std::uint64_t frames_recycled() const { return recycled_; }
  std::uint64_t frames_built() const { return built_; }
  /// Blocks currently parked across all buckets, and their total bytes.
  std::size_t parked_blocks() const;
  std::size_t parked_bytes() const;

  /// Free every parked block (the pool stays usable and refills on demand).
  /// SimArena::shed() calls this between retry attempts of a cell that died
  /// of memory pressure — the freelists are the one part of the carried
  /// storage the allocator cannot reclaim on its own.
  void trim();

 private:
  /// Frames are bucketed at kGranularity steps up to kMaxPooledBytes; larger
  /// (or pool-less) allocations bypass the freelists.
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kMaxPooledBytes = 8192;
  static constexpr std::size_t kBuckets = kMaxPooledBytes / kGranularity;

  void* take(std::size_t bucket_bytes);
  void park(void* block, std::size_t bucket_bytes);

  std::vector<void*> buckets_[kBuckets];
  std::uint64_t recycled_{0};
  std::uint64_t built_{0};
};

/// RAII binding of a pool to the calling thread; restores the previous
/// binding on destruction, so bindings nest. Binding nullptr is a no-op.
class ScopedFramePoolBinding {
 public:
  explicit ScopedFramePoolBinding(FramePool* pool);
  ~ScopedFramePoolBinding();
  ScopedFramePoolBinding(const ScopedFramePoolBinding&) = delete;
  ScopedFramePoolBinding& operator=(const ScopedFramePoolBinding&) = delete;

 private:
  FramePool* previous_;
};

}  // namespace dfly::mpi

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/study.hpp"

namespace dfly {
namespace {

int count_lines(const std::string& path) {
  std::ifstream in(path);
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  return lines;
}

TEST(CsvExport, WritesAllThreeFiles) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "UGALg";
  config.scale = 64;
  Study study(config);
  study.add_app("UR", 24);
  study.add_app("CosmoFlow", 24);
  study.run();
  const std::string prefix = "/tmp/dfly_csv_test";
  study.write_csv(prefix);

  // apps.csv: header + 2 app rows.
  EXPECT_EQ(count_lines(prefix + "_apps.csv"), 3);
  // congestion.csv: header + g*g rows.
  const int g = config.topo.g;
  EXPECT_EQ(count_lines(prefix + "_congestion.csv"), 1 + g * g);
  // stall.csv: header + g rows.
  EXPECT_EQ(count_lines(prefix + "_stall.csv"), 1 + g);

  // Spot-check the apps header and a data field.
  std::ifstream in(prefix + "_apps.csv");
  std::string header, row;
  std::getline(in, header);
  EXPECT_NE(header.find("comm_mean_ms"), std::string::npos);
  std::getline(in, row);
  EXPECT_EQ(row.rfind("UR,", 0), 0u);

  for (const char* suffix : {"_apps.csv", "_congestion.csv", "_stall.csv"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(CsvExport, ThrowsBeforeRun) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  Study study(config);
  study.add_app("UR", 8);
  EXPECT_THROW(study.write_csv("/tmp/dfly_csv_early"), std::logic_error);
}

}  // namespace
}  // namespace dfly

#include "workloads/motifs.hpp"

namespace dfly::workloads {

namespace {
/// Tag for (iteration, direction, plane): every rank computes the same
/// schedule, so the triple is unique across in-flight messages.
int sweep_tag(int iter, int dir, int plane, int planes) {
  return (iter * 2 + dir) * planes + plane;
}
}  // namespace

mpi::Task LuSweepMotif::run(mpi::RankCtx& ctx) const {
  // Wavefront sweep over a 2D process rectangle, pipelined over `planes`
  // k-planes (NPB LU's SSOR pattern). The forward sweep flows from corner
  // (0,0); the backward sweep cannot start anywhere before the forward one
  // drains, which is why LU's communication time dominates its runtime and
  // why interference on any rank delays the whole wavefront.
  const int ix = ctx.rank() / p_.ny;
  const int iy = ctx.rank() % p_.ny;

  // One send buffer for the whole sweep; the coroutine frame keeps it so
  // steady-state iterations post their planes without heap traffic.
  std::vector<mpi::ReqId> sends;
  sends.reserve(static_cast<std::size_t>(2 * p_.planes));
  for (int iter = 0; iter < p_.iterations; ++iter) {
    for (int dir = 0; dir < 2; ++dir) {
      // Upstream/downstream neighbours under this sweep direction.
      const int step = dir == 0 ? +1 : -1;
      const int up_x = ix - step;
      const int up_y = iy - step;
      const int down_x = ix + step;
      const int down_y = iy + step;
      const bool has_up_x = up_x >= 0 && up_x < p_.nx;
      const bool has_up_y = up_y >= 0 && up_y < p_.ny;
      const bool has_down_x = down_x >= 0 && down_x < p_.nx;
      const bool has_down_y = down_y >= 0 && down_y < p_.ny;

      sends.clear();
      for (int k = 0; k < p_.planes; ++k) {
        const int tag = sweep_tag(iter, dir, k, p_.planes);
        if (has_up_x) co_await ctx.recv(up_x * p_.ny + iy, tag);
        if (has_up_y) co_await ctx.recv(ix * p_.ny + up_y, tag);
        co_await ctx.compute(p_.compute_per_plane);
        if (has_down_x) sends.push_back(ctx.isend(down_x * p_.ny + iy, p_.msg_bytes, tag));
        if (has_down_y) sends.push_back(ctx.isend(ix * p_.ny + down_y, p_.msg_bytes, tag));
      }
      co_await ctx.wait_all(sends);
    }
    ctx.mark_iteration();
  }
}

}  // namespace dfly::workloads

#pragma once

#include "net/routing_iface.hpp"

namespace dfly::routing {

/// Static minimal routing: always the shortest path (local, global, local).
/// Not used in the paper's evaluation (it performs poorly on Dragonfly under
/// adversarial traffic) but serves as a baseline and for validation tests.
class MinimalRouting final : public RoutingAlgorithm {
 public:
  std::string name() const override { return "MIN"; }
  RouteDecision route(Router& router, Packet& pkt) override;
};

}  // namespace dfly::routing

#include "stats/io_module.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

namespace dfly {

CsvWriter::CsvWriter(std::string path, std::vector<std::string> columns,
                     std::size_t coalesce_rows)
    : path_(std::move(path)), columns_(std::move(columns)), coalesce_rows_(coalesce_rows) {
  if (columns_.empty()) throw std::invalid_argument("CsvWriter: need at least one column");
  pending_.reserve(coalesce_rows_);
}

CsvWriter::~CsvWriter() {
  try {
    flush();
  } catch (...) {
    // Destructor must not throw; a failed final flush is reported on write.
  }
}

void CsvWriter::open_if_needed() {
  if (out_.is_open()) return;
  out_.open(path_, std::ios::out | std::ios::trunc);
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path_);
  if (!header_written_) {
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (i > 0) out_ << ',';
      out_ << columns_[i];
    }
    out_ << '\n';
    header_written_ = true;
  }
}

void CsvWriter::row(const std::vector<std::string>& values) {
  if (values.size() != columns_.size()) {
    throw std::invalid_argument("CsvWriter: row arity mismatch");
  }
  std::string line;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) line += ',';
    line += values[i];
  }
  pending_.push_back(std::move(line));
  ++rows_written_;
  if (pending_.size() >= coalesce_rows_) flush();
}

void CsvWriter::row(const std::vector<double>& values) {
  std::vector<std::string> strs;
  strs.reserve(values.size());
  for (const double v : values) strs.push_back(num(v));
  row(strs);
}

void CsvWriter::flush() {
  if (pending_.empty()) return;
  open_if_needed();
  for (const auto& line : pending_) out_ << line << '\n';
  out_.flush();
  pending_.clear();
}

std::string CsvWriter::num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace dfly

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/blueprint.hpp"
#include "mpi/job.hpp"
#include "net/network.hpp"
#include "routing/factory.hpp"
#include "sim/engine.hpp"
#include "sim/pdes.hpp"
#include "topo/dragonfly.hpp"
#include "topo/placement.hpp"
#include "trace/trace.hpp"

namespace dfly {

class SimArena;

/// Everything that defines one simulation run (paper §III configuration).
struct StudyConfig {
  DragonflyParams topo{DragonflyParams::paper()};
  NetConfig net{};
  std::string routing{"PAR"};
  PlacementPolicy placement{PlacementPolicy::kRandom};
  std::uint64_t seed{42};
  /// Iteration-count divisor applied to workloads built via add_app.
  int scale{1};
  mpi::ProtocolConfig protocol{};
  NetworkObservability observability{};
  routing::UgalParams ugal{};
  routing::QAdaptiveParams qadp{};
  /// Link faults applied to the network before any traffic starts
  /// (degraded serialisation / extra propagation latency per wire).
  FaultPlan faults{};
  /// Hard stop for the simulation clock (guards against motif deadlocks).
  SimTime time_limit{2 * kSec};
  /// Cooperative wall-clock watchdog for run(): > 0 arms an Engine deadline
  /// of this many real seconds, after which the run is abandoned with
  /// WallDeadlineExceeded (see sim/engine.hpp). 0 = no watchdog. Campaign
  /// plans set this per cell via plan.cell_timeout_s (core/plan.hpp) so a
  /// hung cell is recorded as a timeout instead of stalling the campaign.
  /// Like seed/scale/time_limit, this never affects the blueprint shape.
  double wall_limit_s{0};
  /// Intra-cell parallelism: run this cell's event processing on up to this
  /// many threads, partitioned by Dragonfly group (src/sim/pdes.hpp). 0 =
  /// resolve from DFSIM_CELL_THREADS (default 1 = today's sequential engine).
  /// Output is byte-identical for every value — cells that cannot be
  /// partitioned (adaptive state-carrying routings, record-keeping runs,
  /// single-group topologies) silently fall back to sequential. Never affects
  /// the blueprint shape.
  int cell_threads{0};
};

/// Per-application results of a finished run.
struct AppReport {
  std::string app;
  int app_id{0};
  int nodes{0};
  // Application-level metrics (§V).
  double comm_mean_ms{0};  ///< mean per-rank communication time
  double comm_std_ms{0};   ///< σ across ranks (Fig 4 whiskers)
  double comm_max_ms{0};
  double exec_ms{0};
  double total_msg_mb{0};
  double injection_rate_gbs{0};
  double peak_ingress_bytes{0};
  // Network-level metrics (§V-B, §VI).
  double lat_mean_us{0};
  double lat_p50_us{0};
  double lat_p95_us{0};
  double lat_p99_us{0};
  std::uint64_t packets{0};
  double nonminimal_fraction{0};
  double mean_hops{0};
};

/// Whole-run results.
struct Report {
  std::string routing;
  bool completed{false};  ///< all ranks of all jobs finished
  SimTime makespan{0};
  std::vector<AppReport> apps;
  // System-wide metrics (Fig 11-13).
  double sys_lat_mean_us{0};
  double sys_lat_p50_us{0};
  double sys_lat_p95_us{0};
  double sys_lat_p99_us{0};
  double agg_throughput_gb_per_ms{0};
  double local_stall_ms{0};   ///< mean per-group local-link stall
  double global_stall_ms{0};  ///< mean per-global-link stall
  double congestion_mean{0};
  double congestion_max{0};
  double congestion_imbalance{0};
  /// Jain's fairness index over per-app achieved injection rates (GB/s):
  /// (sum x)^2 / (n sum x^2). 1 = every app injects at the same rate, 1/n =
  /// one app monopolises the network. Apps have intrinsically different
  /// demands (Table I), so compare this *across routings on the same mix*
  /// rather than against 1.0. 0 when fewer than two apps moved traffic.
  double jain_fairness{0};
  std::uint64_t events_executed{0};

  const AppReport& app(const std::string& name) const;
};

/// One experiment: builds the system, places jobs, runs them concurrently,
/// and summarises application- and network-level metrics. This is the
/// paper's contribution surface: everything in §V/§VI is a Study with a
/// particular job mix.
///
/// A Study is one simulation cell: it owns its Engine, Network, PacketPool,
/// stats and every Rng stream, and touches no mutable globals. Whole
/// Studies therefore run concurrently on ParallelRunner workers (one Study
/// per worker at a time); a single Study is not itself thread-safe.
///
/// Storage reuse: when a SimArena is bound to the calling thread (or passed
/// explicitly) and not already held by another Study, this Study borrows the
/// arena's carried storage — engine heap, packet pool, stats blocks,
/// router/NIC buffers — and returns it on destruction, so a worker's
/// second-and-later cells re-initialise in place instead of re-growing from
/// empty. Reuse never changes simulation output (see core/arena.hpp).
///
/// Plan sharing: the immutable half of the cell — topology, wiring, path and
/// placement plans, routing parameterisation — lives in a SystemBlueprint
/// (core/blueprint.hpp). The Study resolves it in this order: an explicit
/// `blueprint` argument (must match the config's shape), the thread-bound
/// BlueprintCache (ParallelRunner binds one across all workers, so
/// same-shape cells share one snapshot), else a private build. Sharing never
/// changes simulation output; --no-blueprint / DFSIM_NO_BLUEPRINT disables
/// it.
class Study {
 public:
  /// `arena` overrides the thread-bound SimArena::current(); pass nullptr to
  /// use the thread binding (the normal sweep path). Reuse is skipped when
  /// arena_enabled() is off or the arena is already held. `blueprint`
  /// overrides cache resolution; it must have been built from a config with
  /// the same shape (throws std::invalid_argument otherwise).
  explicit Study(StudyConfig config, SimArena* arena = nullptr,
                 std::shared_ptr<const SystemBlueprint> blueprint = nullptr);
  ~Study();

  Study(const Study&) = delete;
  Study& operator=(const Study&) = delete;

  /// Add one of the nine paper applications, sized to `max_nodes` (or all
  /// remaining free nodes when max_nodes == 0). Returns the app id.
  int add_app(const std::string& name, int max_nodes = 0);

  /// Add a custom motif on exactly `nodes` nodes. The Study keeps ownership.
  int add_motif(std::unique_ptr<mpi::Motif> motif, int nodes, const std::string& label);

  /// Assign an application to a QoS traffic class (call before run();
  /// NetConfig::qos.num_classes must be > 1 for classes to take effect).
  void set_traffic_class(int app_id, int traffic_class);

  /// Record every application-level send of `app_id` into a MessageTrace
  /// (call before run(); retrieve with trace() afterwards).
  void record_trace(int app_id);
  /// The recorded trace of `app_id` (throws if recording was not enabled).
  const trace::MessageTrace& trace(int app_id) const;

  /// Run every job to completion (all jobs start at t = 0).
  Report run();

  // --- raw access for benches/tests -----------------------------------------
  Engine& engine() { return engine_; }
  Network& network() { return *network_; }
  const Dragonfly& topo() const { return blueprint_->topo(); }
  /// The immutable plan this cell runs against (possibly shared).
  const std::shared_ptr<const SystemBlueprint>& blueprint() const { return blueprint_; }
  mpi::Job& job(int app_id) { return *jobs_[static_cast<std::size_t>(app_id)]; }
  int num_jobs() const { return static_cast<int>(jobs_.size()); }
  const StudyConfig& config() const { return config_; }
  int free_nodes() const { return placer_.free_nodes(); }
  RoutingAlgorithm& routing() { return *routing_; }
  /// The arena this Study borrowed storage from (null = building fresh).
  SimArena* arena() const { return arena_; }
  /// The parallel cell driving this run under --cell-threads, or null when
  /// the cell runs (or fell back to) the sequential engine. Valid after
  /// run(); bench_pdes reads window/cross-domain counters through this.
  const PdesCell* pdes() const { return pdes_.get(); }

  /// Build the report for the current state (run() calls this at the end).
  Report report() const;

  /// Dump the run's observability data through the coalescing CSV writer
  /// (the paper's §III IO module): `<prefix>_apps.csv` (per-application
  /// metrics), `<prefix>_congestion.csv` (Fig 12 matrix rows), and
  /// `<prefix>_stall.csv` (Fig 11 per-group stall). Call after run().
  void write_csv(const std::string& prefix) const;

 private:
  struct PendingJob {
    std::unique_ptr<mpi::Motif> motif;
    std::string label;
    std::vector<int> nodes;
    int traffic_class{0};
    bool record_trace{false};
  };

  void build();  ///< instantiate routing, network and jobs (first run() step)

  StudyConfig config_;
  std::shared_ptr<const SystemBlueprint> blueprint_;  ///< immutable shared plan
  SimArena* arena_{nullptr};
  Engine engine_;
  Placer placer_;
  std::vector<PendingJob> pending_;
  std::unique_ptr<RoutingAlgorithm> routing_;
  // Declared before network_ (destroyed after it): the Network's NICs write
  // into the cell's per-domain stats shards until the Network goes away.
  std::unique_ptr<PdesCell> pdes_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<mpi::MpiSystem> mpi_system_;
  std::vector<std::unique_ptr<mpi::Motif>> motifs_;
  std::vector<std::unique_ptr<mpi::Job>> jobs_;
  std::vector<std::unique_ptr<trace::MessageTrace>> traces_;  ///< index = app id, may be null
  bool ran_{false};
};

}  // namespace dfly

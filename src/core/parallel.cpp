#include "core/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "core/arena.hpp"

namespace dfly {

ParallelRunner::ParallelRunner(int jobs) : jobs_(resolve_jobs(jobs, 1)) {}

int ParallelRunner::resolve_jobs(int requested, int fallback) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DFSIM_JOBS")) {
    const int jobs = std::atoi(env);
    if (jobs > 0) return jobs;
  }
  return fallback < 1 ? 1 : fallback;
}

int ParallelRunner::hardware_jobs() {
  int jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs > 12) jobs = 12;
  if (jobs < 1) jobs = 1;
  return jobs;
}

void ParallelRunner::run_indexed(std::size_t n,
                                 const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  const int workers = jobs_ < static_cast<int>(n) ? jobs_ : static_cast<int>(n);
  // Each worker (including the sequential fast path) binds a persistent
  // SimArena for its run: the first cell grows the storage, every later cell
  // on the same worker reuses it in place. Reuse is output-neutral, so cell
  // -> worker assignment never affects results (see core/arena.hpp);
  // --no-arena / DFSIM_NO_ARENA turns the binding off.
  const bool use_arena = arena_enabled();
  if (workers <= 1) {
    SimArena arena;
    ScopedArenaBinding binding(use_arena ? &arena : nullptr);
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Work stealing via a shared counter: cells are claimed in index order, so
  // a cheap cell never waits behind an expensive one on the same worker.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  auto worker = [&] {
    SimArena arena;
    ScopedArenaBinding binding(use_arena ? &arena : nullptr);
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& thread : pool) thread.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace dfly

#pragma once

#include <memory>
#include <vector>

#include "net/config.hpp"
#include "net/routing_iface.hpp"
#include "routing/q_table.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "topo/dragonfly.hpp"

namespace dfly::routing {

/// Q-adaptive hyperparameters (defaults follow the HPDC'21 setup in spirit:
/// moderate learning rate, small exploration, queue-aware tie-breaking).
struct QAdaptiveParams {
  double alpha{0.2};        ///< learning rate
  double epsilon{0.01};     ///< exploration probability per decision
  double queue_weight{1.0}; ///< weight of the instantaneous local queue penalty

  /// Shape identity (used by the SystemBlueprint cache key).
  bool operator==(const QAdaptiveParams&) const = default;
};

/// The unloaded initial Q-table estimates depend only on topology and
/// NetConfig, so they are precomputed once per system shape (SystemBlueprint
/// shares one copy across every cell) and copied into each QAdaptiveRouting
/// instance's mutable tables.
std::vector<QTable> build_initial_qtables(const Dragonfly& topo, const NetConfig& cfg);

/// Q-adaptive routing: multi-agent reinforcement-learning routing where each
/// router keeps a two-level Q-table of estimated delivery times and forwards
/// packets along the minimum-estimate admissible port.
///
/// Learning loop (paper Fig 2): (1) router x receives a packet, (2) reads
/// its table and forwards it, (3) the downstream router y receives it and
/// (4) sends back, one reverse-wire latency later, a feedback signal with
/// the measured one-hop delay plus y's own best remaining estimate; x folds
/// it into Q_x via an exponential moving average. Tables are initialised
/// with unloaded topology estimates and train online during the run — no
/// pre-trained state, matching §V's fairness constraint.
///
/// Admissible candidate ports follow the same constrained path DFA as the
/// adaptive policies (at most one intermediate group), so Q-adaptive is
/// loop-free by construction and differs from UGAL/PAR only in *what
/// information* drives the choice: learned system-wide congestion instead of
/// local queue depth.
///
/// Const/mutable split: `params_` and the blueprint-shared initial estimates
/// are immutable configuration; `tables_` (and the Rng / feedback counters)
/// are the per-cell learning state that trains during the run.
class QAdaptiveRouting final : public RoutingAlgorithm, public Component {
 public:
  /// `initial` (optional) is a blueprint-shared precomputed initial-table
  /// set; pass nullptr to compute the unloaded estimates locally. The
  /// resulting tables are identical either way.
  QAdaptiveRouting(Engine& engine, const Dragonfly& topo, const NetConfig& cfg,
                   QAdaptiveParams params, std::uint64_t seed,
                   const std::vector<QTable>* initial = nullptr);

  std::string name() const override { return "Q-adp"; }
  RouteDecision route(Router& router, Packet& pkt) override;
  void on_arrival(Router& router, Packet& pkt) override;

  void handle(Engine& engine, const Event& event) override;

  const QTable& table(int router) const { return tables_[static_cast<std::size_t>(router)]; }
  const QAdaptiveParams& params() const { return params_; }
  std::uint64_t feedback_signals() const { return feedback_signals_; }

 private:
  /// Best remaining-time estimate from `router` for a packet heading to
  /// destination router `dst` (phase-aware candidate set).
  double best_estimate(int router_id, int dst_router, const Packet& pkt) const;

  /// Admissible candidate ports for `pkt` at `router`.
  void candidates(Router& router, const Packet& pkt, std::vector<int>& out) const;

  // Immutable parameterisation (shared-plan side of the const/mutable split).
  const Dragonfly* topo_;
  const NetConfig* cfg_;
  const QAdaptiveParams params_;
  // Mutable per-cell learning state.
  Engine* engine_;
  Rng rng_;
  std::vector<QTable> tables_;
  mutable std::vector<int> scratch_;
  std::uint64_t feedback_signals_{0};
};

}  // namespace dfly::routing

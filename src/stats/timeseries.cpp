#include "stats/timeseries.hpp"

#include <algorithm>

namespace dfly {

double TimeSeries::total() const {
  double acc = 0.0;
  for (const double b : buckets_) acc += b;
  return acc;
}

double TimeSeries::mean_rate() const {
  if (buckets_.empty()) return 0.0;
  return total() / static_cast<double>(buckets_.size());
}

double TimeSeries::mean_rate_between(SimTime t0, SimTime t1) const {
  if (buckets_.empty() || t1 <= t0) return 0.0;
  const auto first = static_cast<std::size_t>(t0 / bucket_width_);
  auto last = static_cast<std::size_t>((t1 + bucket_width_ - 1) / bucket_width_);
  last = std::min(last, buckets_.size());
  if (first >= last) return 0.0;
  double acc = 0.0;
  for (std::size_t i = first; i < last; ++i) acc += buckets_[i];
  return acc / static_cast<double>(last - first);
}

TimeSeries::Peak TimeSeries::peak() const {
  Peak best;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] > best.value) {
      best.value = buckets_[i];
      best.when = bucket_start(i);
    }
  }
  return best;
}

}  // namespace dfly

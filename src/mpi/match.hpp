#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "sim/time.hpp"

namespace dfly::mpi {

inline constexpr int kAnySource = -1;

/// MPI-style (source, tag) matching for one rank.
///
/// Posted receives match inbound arrivals in post order; arrivals that find
/// no matching receive park in the unexpected queue. An "arrival" is either
/// a completed eager message (rdv_id == 0) or a rendezvous RTS header
/// (rdv_id != 0) whose payload is still at the sender.
class MatchList {
 public:
  struct Posted {
    int src_rank;  ///< kAnySource matches any sender
    int tag;
    std::uint32_t request;  ///< rank-local request id
  };
  struct Unexpected {
    int src_rank;
    int tag;
    std::int64_t bytes;
    SimTime arrived;
    std::uint64_t rdv_id;  ///< 0 for eager data, else the rendezvous handle
  };

  static constexpr std::uint32_t kNoMatch = 0xffffffffu;

  /// Match an arrival against posted receives. Returns the matched request
  /// id, or kNoMatch after parking the arrival as unexpected.
  std::uint32_t on_arrival(int src_rank, int tag, std::int64_t bytes, SimTime now,
                           std::uint64_t rdv_id);

  /// Satisfy a new receive from the unexpected queue if possible; otherwise
  /// post it. Returns the consumed unexpected entry on a hit.
  std::optional<Unexpected> post_recv(int src_rank, int tag, std::uint32_t request);

  std::size_t posted_count() const { return posted_.size(); }
  std::size_t unexpected_count() const { return unexpected_.size(); }

 private:
  std::deque<Posted> posted_;
  std::deque<Unexpected> unexpected_;
};

}  // namespace dfly::mpi

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "topo/dragonfly.hpp"

/// Batch scheduling over a Dragonfly machine — the substrate behind the
/// paper's §I placement argument.
///
/// The paper dismisses contiguous placement because "it can cause severe
/// system fragmentation: external fragmentation occurs when there is a
/// sufficient number of compute nodes available for a job; however, they
/// cannot be allocated because these compute nodes are not in a contiguous
/// partition." This module quantifies that claim: an event-driven FCFS
/// batch scheduler allocates a synthetic job stream under the placement
/// policies from the interference literature and reports wait time,
/// utilisation, external-fragmentation blocking, internal waste, and the
/// group-sharing exposure that drives network interference. The ablation
/// bench (`bench_ablation_scheduler`) pairs these numbers with the routing
/// results: what contiguous placement buys in isolation it pays for in
/// fragmentation, which is exactly why the paper reaches for intelligent
/// routing instead.
namespace dfly::sched {

/// Node-allocation policies (scheduler-level counterparts of the
/// topo::PlacementPolicy used inside a single simulation).
enum class AllocPolicy {
  kRandom,           ///< any free nodes, uniformly at random (paper default)
  kLinear,           ///< first-fit in node id order (packed, non-contiguous)
  kGroupContiguous,  ///< whole free groups only (strict isolation)
};

const char* to_string(AllocPolicy policy);
AllocPolicy alloc_policy_from_string(const std::string& name);

/// One job submission.
struct JobRequest {
  int id{0};
  int nodes{1};
  double arrival_ms{0};
  double runtime_ms{1};
};

/// Per-job outcome.
struct JobStats {
  int id{0};
  int requested_nodes{0};
  int granted_nodes{0};  ///< > requested under whole-group granularity
  double arrival_ms{0};
  double start_ms{0};
  double finish_ms{0};
  double wait_ms{0};
  /// Running jobs sharing at least one group with this job at its start —
  /// the interference-exposure proxy (0 under strict contiguous placement).
  int co_resident_sharers{0};
};

/// Whole-stream summary.
struct ScheduleResult {
  std::vector<JobStats> jobs;
  double makespan_ms{0};
  double mean_wait_ms{0};
  double p95_wait_ms{0};
  double max_wait_ms{0};
  /// Requested node-time over total node-time until makespan.
  double utilization{0};
  /// (granted - requested) node-time over granted node-time.
  double internal_waste{0};
  /// Total time the queue head was blocked while the machine had enough
  /// free nodes in total — the paper's external fragmentation, measured.
  double frag_blocked_ms{0};
  /// Mean of JobStats::co_resident_sharers over all jobs.
  double mean_sharers{0};
};

/// Event-driven FCFS batch scheduler (optional aggressive backfill: queued
/// jobs behind a blocked head may start when they fit the free pool now).
class BatchScheduler {
 public:
  BatchScheduler(const Dragonfly& topo, AllocPolicy policy, bool backfill, std::uint64_t seed);

  /// Run the stream to completion; `jobs` need not be sorted by arrival.
  /// Jobs larger than the machine throw std::invalid_argument.
  ScheduleResult run(std::vector<JobRequest> jobs);

 private:
  struct Running {
    int job_index;
    double finish_ms;
    std::vector<int> nodes;
  };

  /// Try to allocate `nodes` under the policy; empty result = cannot.
  std::vector<int> try_allocate(int nodes);
  void release(const std::vector<int>& nodes);
  int sharers_of(const std::vector<int>& nodes, const std::vector<Running>& running) const;

  const Dragonfly* topo_;
  AllocPolicy policy_;
  bool backfill_;
  Rng rng_;
  std::vector<bool> used_;
  std::vector<int> free_per_group_;
  int free_count_{0};
};

/// Synthetic job stream: exponential interarrivals (mean
/// `mean_interarrival_ms`), log-uniform sizes in [min_nodes, max_nodes],
/// exponential runtimes (mean `mean_runtime_ms`). Deterministic per seed.
std::vector<JobRequest> synthetic_job_stream(int count, double mean_interarrival_ms,
                                             double mean_runtime_ms, int min_nodes,
                                             int max_nodes, std::uint64_t seed);

}  // namespace dfly::sched

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

/// Crash-safe campaign completion journal.
///
/// `dflysim --plan=FILE --journal=J` appends one JSON line to J for every
/// cell the campaign finishes — succeeded, failed or timed out — and fsyncs
/// it before the next cell is emitted. After a crash (including `kill -9`),
/// `--resume` replays the journal: cells with a record are skipped, the
/// output JSONL is truncated back to the last journaled byte offset (cutting
/// any torn tail write), and the remaining cells run as if the campaign had
/// never stopped — the reassembled output is byte-identical to one
/// uninterrupted run. See docs/ROBUSTNESS.md for the workflow and format.
///
/// Record format (one line, stable key order, written by PlanJournal::format):
///
///   {"cell":17,"ok":true,"completed":true,"hash":"91ab...","attempts":1,
///    "timeout":false,"offset":83451,"error":""}
///
///   cell       PlanCell.index in the deterministic plan expansion
///   ok         the cell produced a report and was delivered to the sinks
///   completed  Report.completed of that report (false when !ok)
///   hash       plan_cell_hash() of the expanded cell, hex — resume refuses
///              a journal whose cells do not match the re-expanded plan
///   attempts   simulation attempts consumed (> 1 after transient retries)
///   timeout    the cell was abandoned by the wall-clock watchdog
///   offset     size in bytes of the primary output stream after this cell's
///              emission (unchanged for failed cells) — the resume
///              truncation point
///   error      first error message for failed cells, "" otherwise
namespace dfly {

/// One journal line, parsed or about to be written.
struct JournalRecord {
  std::uint64_t cell{0};
  bool ok{false};
  bool completed{false};
  std::uint64_t hash{0};
  int attempts{1};
  bool timeout{false};
  std::uint64_t offset{0};
  std::string error;

  bool operator==(const JournalRecord&) const = default;
};

/// Append-side of the journal: opens (creating if needed) in append mode and
/// makes every record durable — write + fsync — before append() returns, so
/// a record either exists completely or not at all after any crash. Write
/// failures throw std::runtime_error (the campaign driver records them).
class PlanJournal {
 public:
  explicit PlanJournal(const std::string& path);
  ~PlanJournal();
  PlanJournal(const PlanJournal&) = delete;
  PlanJournal& operator=(const PlanJournal&) = delete;

  const std::string& path() const { return path_; }

  /// Durably append one record (one fsync'd line).
  void append(const JournalRecord& record);

  /// Serialise a record as its journal line (without the trailing newline).
  static std::string format(const JournalRecord& record);
  /// Parse one journal line; std::nullopt when the line is malformed or
  /// incomplete (a torn tail write).
  static std::optional<JournalRecord> parse_line(const std::string& line);

  /// Read every complete record of `path` and REPAIR the file in place: the
  /// first incomplete or unparsable line — a write torn by a crash — and
  /// everything after it is truncated away, so a subsequent PlanJournal can
  /// append cleanly. A missing file yields an empty vector (fresh start).
  /// IO errors other than non-existence throw std::runtime_error.
  static std::vector<JournalRecord> recover(const std::string& path);

 private:
  std::string path_;
  int fd_{-1};
};

/// Truncate `path` to exactly `size` bytes (used by --resume to cut a torn
/// output tail back to the last journaled offset). Throws std::runtime_error
/// on failure; truncating a missing file to 0 bytes creates it empty.
void truncate_file(const std::string& path, std::uint64_t size);

}  // namespace dfly

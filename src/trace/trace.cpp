#include "trace/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "stats/io_module.hpp"

namespace dfly::trace {

void MessageTrace::on_post_send(int /*app_id*/, SimTime when, int src_rank, int dst_rank,
                                std::int64_t bytes, int tag) {
  records_.push_back(MessageRecord{when, src_rank, dst_rank, bytes, tag});
}

std::vector<MessageRecord> MessageTrace::rank_records(int src_rank) const {
  std::vector<MessageRecord> out;
  for (const MessageRecord& record : records_) {
    if (record.src_rank == src_rank) out.push_back(record);
  }
  return out;
}

int MessageTrace::num_ranks() const {
  int max_rank = -1;
  for (const MessageRecord& record : records_) {
    max_rank = std::max(max_rank, static_cast<int>(record.src_rank));
  }
  return max_rank + 1;
}

TraceSummary MessageTrace::summary(SimTime burst_gap) const {
  TraceSummary s;
  if (records_.empty()) return s;
  s.messages = records_.size();
  s.num_ranks = num_ranks();
  s.first_post = records_.front().when;
  s.last_post = records_.front().when;
  for (const MessageRecord& record : records_) {
    s.total_bytes += record.bytes;
    s.largest_message = std::max(s.largest_message, record.bytes);
    s.first_post = std::min(s.first_post, record.when);
    s.last_post = std::max(s.last_post, record.when);
  }
  s.duration_ms = to_ms(s.last_post - s.first_post);
  if (s.last_post > s.first_post) {
    // bytes / ns == GB/s
    s.injection_rate_gbs =
        static_cast<double>(s.total_bytes) / to_ns(s.last_post - s.first_post);
  }
  // Peak ingress volume: per source rank, the largest sum of consecutive
  // posts whose gaps stay within `burst_gap` (§IV metric 2). Records of one
  // rank are already in post order; group by rank first.
  struct Burst {
    SimTime last{0};
    std::int64_t current{0};
  };
  std::vector<Burst> bursts(static_cast<std::size_t>(s.num_ranks));
  for (const MessageRecord& record : records_) {
    Burst& b = bursts[static_cast<std::size_t>(record.src_rank)];
    if (b.current > 0 && record.when - b.last > burst_gap) b.current = 0;
    b.current += record.bytes;
    b.last = record.when;
    s.peak_ingress_bytes = std::max(s.peak_ingress_bytes, b.current);
  }
  return s;
}

void MessageTrace::save_csv(const std::string& path) const {
  CsvWriter writer(path, {"when_ps", "src_rank", "dst_rank", "bytes", "tag"});
  for (const MessageRecord& record : records_) {
    writer.row({std::to_string(record.when), std::to_string(record.src_rank),
                std::to_string(record.dst_rank), std::to_string(record.bytes),
                std::to_string(record.tag)});
  }
  writer.flush();
}

MessageTrace MessageTrace::load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("MessageTrace::load_csv: cannot open " + path);
  MessageTrace trace;
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (header) {  // skip the column row
      header = false;
      continue;
    }
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string field;
    MessageRecord record;
    if (!std::getline(ss, field, ',')) continue;
    record.when = std::stoll(field);
    if (!std::getline(ss, field, ',')) continue;
    record.src_rank = std::stoi(field);
    if (!std::getline(ss, field, ',')) continue;
    record.dst_rank = std::stoi(field);
    if (!std::getline(ss, field, ',')) continue;
    record.bytes = std::stoll(field);
    if (!std::getline(ss, field, ',')) continue;
    record.tag = std::stoi(field);
    trace.records_.push_back(record);
  }
  return trace;
}

ReplayMotif::ReplayMotif(const MessageTrace& trace, ReplayParams params)
    : params_(params) {
  if (params_.speed <= 0) throw std::invalid_argument("ReplayMotif: speed must be positive");
  const int ranks = trace.num_ranks();
  by_rank_.resize(static_cast<std::size_t>(ranks));
  base_time_ = trace.empty() ? 0 : trace.records().front().when;
  for (const MessageRecord& record : trace.records()) {
    base_time_ = std::min(base_time_, record.when);
    by_rank_[static_cast<std::size_t>(record.src_rank)].push_back(record);
  }
}

mpi::Task ReplayMotif::run(mpi::RankCtx& ctx) const {
  ctx.set_sink_mode(true);
  if (ctx.rank() >= static_cast<int>(by_rank_.size())) co_return;
  const auto& records = by_rank_[static_cast<std::size_t>(ctx.rank())];
  std::vector<mpi::ReqId> window;
  window.reserve(static_cast<std::size_t>(params_.window));
  const SimTime start = ctx.now();
  for (const MessageRecord& record : records) {
    if (params_.preserve_timing) {
      const auto offset = static_cast<SimTime>(
          static_cast<double>(record.when - base_time_) / params_.speed);
      const SimTime target = start + offset;
      if (target > ctx.now()) co_await ctx.compute(target - ctx.now());
    }
    if (record.dst_rank == ctx.rank() || record.dst_rank >= ctx.size()) continue;
    window.push_back(ctx.isend(record.dst_rank, record.bytes, record.tag));
    if (static_cast<int>(window.size()) >= params_.window) {
      co_await ctx.wait_all(window);
      window.clear();
    }
  }
  if (!window.empty()) co_await ctx.wait_all(window);
  ctx.mark_iteration();
}

}  // namespace dfly::trace

// Tests for the synthetic traffic patterns (workloads/synthetic.hpp).

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <tuple>

#include "core/study.hpp"
#include "workloads/synthetic.hpp"

namespace dfly {
namespace {

using workloads::BisectionMotif;
using workloads::BisectionParams;
using workloads::GroupAdversarialMotif;
using workloads::GroupAdversarialParams;
using workloads::HotRegionMotif;
using workloads::HotRegionParams;
using workloads::IncastMotif;
using workloads::IncastParams;
using workloads::PingPongMotif;
using workloads::PingPongParams;
using workloads::ShiftMotif;
using workloads::ShiftParams;

StudyConfig tiny_config(const std::string& routing = "PAR") {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = routing;
  config.seed = 11;
  return config;
}

TEST(Incast, CompletesAndOnlySendersInject) {
  Study study(tiny_config());
  IncastParams p;
  p.fanin_targets = 2;
  p.iterations = 50;
  study.add_motif(std::make_unique<IncastMotif>(p), 24, "Incast");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  const auto& job = study.job(0);
  for (int r = 0; r < job.size(); ++r) {
    if (r < 2) {
      EXPECT_EQ(job.rank(r).messages_sent(), 0) << "receiver " << r;
    } else {
      EXPECT_EQ(job.rank(r).messages_sent(), 50) << "sender " << r;
    }
  }
}

TEST(Incast, ReceiverLinksCarryAllTraffic) {
  Study study(tiny_config());
  IncastParams p;
  p.fanin_targets = 1;
  p.iterations = 40;
  p.msg_bytes = 2048;
  study.add_motif(std::make_unique<IncastMotif>(p), 16, "Incast");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  // 15 senders x 40 messages x 2048B all target rank 0.
  EXPECT_NEAR(report.apps[0].total_msg_mb, 15.0 * 40 * 2048 / 1e6, 0.01);
}

TEST(Shift, PermutationEachRankSendsFixedCount) {
  Study study(tiny_config());
  ShiftParams p;
  p.stride = 5;
  p.iterations = 60;
  study.add_motif(std::make_unique<ShiftMotif>(p), 18, "Shift");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  const auto& job = study.job(0);
  for (int r = 0; r < job.size(); ++r) {
    EXPECT_EQ(job.rank(r).messages_sent(), 60) << "rank " << r;
  }
}

TEST(Shift, StrideMultipleOfSizeIsNoTraffic) {
  Study study(tiny_config());
  ShiftParams p;
  p.stride = 16;
  p.iterations = 10;
  study.add_motif(std::make_unique<ShiftMotif>(p), 16, "Shift");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(study.job(0).total_messages_sent(), 0);
}

TEST(Shift, NegativeStrideWraps) {
  Study study(tiny_config());
  ShiftParams p;
  p.stride = -3;
  p.iterations = 5;
  study.add_motif(std::make_unique<ShiftMotif>(p), 12, "Shift");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(study.job(0).total_messages_sent(), 5 * 12);
}

class AdversarialStride : public ::testing::TestWithParam<int> {};

TEST_P(AdversarialStride, CompletesUnderLinearPlacement) {
  StudyConfig config = tiny_config();
  config.placement = PlacementPolicy::kLinear;
  Study study(std::move(config));
  GroupAdversarialParams p;
  p.group_stride = GetParam();
  p.ranks_per_group = 8;  // tiny system: p=2, a=4 -> 8 nodes per group
  p.iterations = 40;
  study.add_motif(std::make_unique<GroupAdversarialMotif>(p), 32, "ADV");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(study.job(0).total_messages_sent(), 40 * 32);
}

INSTANTIATE_TEST_SUITE_P(Strides, AdversarialStride, ::testing::Values(1, 2, 3),
                         [](const auto& param_info) {
                           return "k" + std::to_string(param_info.param);
                         });

TEST(Adversarial, TargetsStayInDestinationBlock) {
  // With linear placement on the tiny system, ranks [0,8) sit in group 0,
  // [8,16) in group 1, ... ADV+1 traffic from block 0 must land in block 1.
  StudyConfig config = tiny_config("MIN");
  config.placement = PlacementPolicy::kLinear;
  Study study(std::move(config));
  GroupAdversarialParams p;
  p.group_stride = 1;
  p.ranks_per_group = 8;
  p.iterations = 30;
  study.add_motif(std::make_unique<GroupAdversarialMotif>(p), 24, "ADV");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  // All traffic concentrates on inter-group (global) links under MIN: with
  // 3 blocks, no message stays inside its source group.
  const auto& stats = study.network().link_stats();
  std::int64_t global_bytes = stats.total_bytes(LinkClass::kGlobal);
  EXPECT_GT(global_bytes, 0);
}

TEST(PingPong, RoundTripCountsExact) {
  Study study(tiny_config("MIN"));
  PingPongParams p;
  p.iterations = 25;
  p.msg_bytes = 512;
  study.add_motif(std::make_unique<PingPongMotif>(p), 10, "PingPong");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  const auto& job = study.job(0);
  for (int r = 0; r < job.size(); ++r) {
    EXPECT_EQ(job.rank(r).messages_sent(), 25) << "rank " << r;
    EXPECT_EQ(job.rank(r).bytes_sent(), 25 * 512) << "rank " << r;
  }
}

TEST(PingPong, OddRankSitsOut) {
  Study study(tiny_config("MIN"));
  PingPongParams p;
  p.iterations = 5;
  study.add_motif(std::make_unique<PingPongMotif>(p), 11, "PingPong");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(study.job(0).rank(10).messages_sent(), 0);
}

TEST(Bisection, AllTrafficCrossesHalves) {
  Study study(tiny_config());
  BisectionParams p;
  p.iterations = 10;
  p.msg_bytes = 8192;
  study.add_motif(std::make_unique<BisectionMotif>(p), 16, "Bisection");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  const auto& job = study.job(0);
  for (int r = 0; r < job.size(); ++r) {
    EXPECT_EQ(job.rank(r).bytes_sent(), 10 * 8192) << "rank " << r;
  }
}

class HotRegionMix : public ::testing::TestWithParam<int> {};

TEST_P(HotRegionMix, CompletesAcrossTheDial) {
  Study study(tiny_config());
  HotRegionParams p;
  p.hot_per_mille = GetParam();
  p.hot_ranks = 4;
  p.iterations = 60;
  study.add_motif(std::make_unique<HotRegionMotif>(p), 24, "HotRegion");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  EXPECT_GT(study.job(0).total_messages_sent(), 0);
}

INSTANTIATE_TEST_SUITE_P(Dial, HotRegionMix, ::testing::Values(0, 250, 500, 1000),
                         [](const auto& param_info) {
                           return "pm" + std::to_string(param_info.param);
                         });

TEST(HotRegion, HotterDialConcentratesTraffic) {
  // Compare ingress at the hot ranks between a cold and a hot dial setting:
  // deliveries to ranks [0, hot) should rise with the dial.
  auto hot_bytes = [](int per_mille) {
    StudyConfig config;
    config.topo = DragonflyParams::tiny();
    config.routing = "PAR";
    config.seed = 3;
    Study study(std::move(config));
    HotRegionParams p;
    p.hot_per_mille = per_mille;
    p.hot_ranks = 2;
    p.iterations = 80;
    study.add_motif(std::make_unique<HotRegionMotif>(p), 24, "HotRegion");
    const Report report = study.run();
    EXPECT_TRUE(report.completed);
    // Terminal-link traffic into the two hot nodes.
    const auto& stats = study.network().link_stats();
    const auto& topo = study.topo();
    std::int64_t bytes = 0;
    for (int link = 0; link < stats.num_links(); ++link) {
      if (stats.link_class(link) != LinkClass::kTerminal) continue;
      bytes += stats.bytes(link);
    }
    (void)topo;
    return bytes;
  };
  EXPECT_GT(hot_bytes(900), 0);
}

}  // namespace
}  // namespace dfly

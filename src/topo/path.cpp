#include "topo/path.hpp"

#include <cassert>

namespace dfly {

void PathOracle::append_minimal(RouterPath& path, int to, Rng* rng) const {
  const Dragonfly& t = *topo_;
  int cur = path.back();
  if (cur == to) return;
  const int src_grp = t.group_of_router(cur);
  const int dst_grp = t.group_of_router(to);
  if (src_grp == dst_grp) {
    path.push_back(to);  // one local hop
    return;
  }
  const auto& gw = t.gateways(src_grp, dst_grp);
  assert(!gw.empty() && "groups must be connected");
  // Prefer a gateway co-located with `cur` to keep the path at <= 3 hops.
  const GlobalEndpoint* chosen = nullptr;
  std::vector<const GlobalEndpoint*> here;
  for (const auto& e : gw) {
    if (e.router == cur) here.push_back(&e);
  }
  if (!here.empty()) {
    chosen = rng != nullptr ? here[rng->next_below(here.size())] : here.front();
  } else {
    chosen = rng != nullptr ? &gw[rng->next_below(gw.size())] : &gw.front();
    path.push_back(chosen->router);  // local hop to the gateway
  }
  const GlobalEndpoint far = t.global_peer(chosen->router, chosen->global_port);
  path.push_back(far.router);  // global hop
  if (far.router != to) path.push_back(to);  // local hop in destination group
}

RouterPath PathOracle::minimal(int src_router, int dst_router, Rng* rng) const {
  RouterPath path{src_router};
  append_minimal(path, dst_router, rng);
  return path;
}

RouterPath PathOracle::valiant(int src_router, int dst_router, int int_group,
                               int int_router, Rng* rng) const {
  const Dragonfly& t = *topo_;
  RouterPath path{src_router};
  const int src_grp = t.group_of_router(src_router);
  const int dst_grp = t.group_of_router(dst_router);
  if (int_group != src_grp && int_group != dst_grp) {
    if (int_router >= 0) {
      assert(t.group_of_router(int_router) == int_group);
      append_minimal(path, int_router, rng);
    } else {
      // Land anywhere in the intermediate group: route to the gateway's far
      // end (one local hop at most to reach a gateway, then the global hop).
      const auto& gw = t.gateways(src_grp, int_group);
      assert(!gw.empty());
      const GlobalEndpoint* e = nullptr;
      for (const auto& cand : gw) {
        if (cand.router == src_router) {
          e = &cand;
          break;
        }
      }
      if (e == nullptr) e = rng != nullptr ? &gw[rng->next_below(gw.size())] : &gw.front();
      if (e->router != path.back()) path.push_back(e->router);
      const GlobalEndpoint far = t.global_peer(e->router, e->global_port);
      path.push_back(far.router);
    }
  }
  append_minimal(path, dst_router, rng);
  return path;
}

int PathOracle::count_minimal(int src_router, int dst_router) const {
  const Dragonfly& t = *topo_;
  if (src_router == dst_router) return 1;
  const int sg = t.group_of_router(src_router);
  const int dg = t.group_of_router(dst_router);
  if (sg == dg) return 1;
  if (plan_ != nullptr) {
    return plan_->group_paths[static_cast<std::size_t>(sg) * plan_->num_groups + dg];
  }
  return static_cast<int>(t.gateways(sg, dg).size());
}

int PathOracle::minimal_hops(int src_router, int dst_router) const {
  const Dragonfly& t = *topo_;
  if (plan_ != nullptr) {
    return plan_->min_hops[static_cast<std::size_t>(src_router) * plan_->num_routers +
                           dst_router];
  }
  if (src_router == dst_router) return 0;
  const int sg = t.group_of_router(src_router);
  const int dg = t.group_of_router(dst_router);
  if (sg == dg) return 1;
  const auto& gw = t.gateways(sg, dg);
  int best = 3;
  for (const auto& e : gw) {
    const GlobalEndpoint far = t.global_peer(e.router, e.global_port);
    int hops = 1;                            // the global hop
    if (e.router != src_router) ++hops;      // local hop to gateway
    if (far.router != dst_router) ++hops;    // local hop at destination
    if (hops < best) best = hops;
  }
  return best;
}

PathPlan PathPlan::build(const Dragonfly& topo) {
  PathPlan plan;
  plan.num_routers = topo.num_routers();
  plan.num_groups = topo.num_groups();
  // Fill the tables through a plan-less oracle so the precomputed answers are
  // by construction the same as the on-demand ones.
  const PathOracle oracle(topo);
  plan.min_hops.resize(static_cast<std::size_t>(plan.num_routers) * plan.num_routers);
  for (int s = 0; s < plan.num_routers; ++s) {
    for (int d = 0; d < plan.num_routers; ++d) {
      plan.min_hops[static_cast<std::size_t>(s) * plan.num_routers + d] =
          static_cast<std::uint8_t>(oracle.minimal_hops(s, d));
    }
  }
  plan.group_paths.resize(static_cast<std::size_t>(plan.num_groups) * plan.num_groups, 1);
  for (int sg = 0; sg < plan.num_groups; ++sg) {
    for (int dg = 0; dg < plan.num_groups; ++dg) {
      if (sg == dg) continue;
      plan.group_paths[static_cast<std::size_t>(sg) * plan.num_groups + dg] =
          static_cast<std::int32_t>(topo.gateways(sg, dg).size());
    }
  }
  return plan;
}

}  // namespace dfly

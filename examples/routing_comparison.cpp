// Routing-policy shoot-out: run the same workload under every routing
// algorithm in the library (the paper's four plus MIN and Valiant
// baselines) and rank them by application communication time.
//
//   $ ./routing_comparison [app]    (default: LU)

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/pairwise.hpp"
#include "routing/factory.hpp"

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "LU";

  struct Row {
    std::string routing;
    double comm_ms;
    double p99_us;
    double nonmin;
  };
  std::vector<Row> rows;

  for (const auto& routing : dfly::routing::all_routings()) {
    dfly::StudyConfig config;
    config.topo = dfly::DragonflyParams::paper();
    config.routing = routing;
    config.scale = 16;
    config.seed = 11;
    const dfly::PairwiseResult result = dfly::run_pairwise(config, app, "UR");
    rows.push_back(Row{routing, result.target_report.comm_mean_ms,
                       result.target_report.lat_p99_us,
                       result.target_report.nonminimal_fraction});
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.comm_ms < b.comm_ms; });

  std::printf("%s co-run with UR background — all routing policies:\n\n", app.c_str());
  std::printf("%-8s %12s %12s %10s\n", "routing", "comm (ms)", "p99 (us)", "nonmin %");
  for (const auto& row : rows) {
    std::printf("%-8s %12.3f %12.2f %9.1f%%\n", row.routing.c_str(), row.comm_ms, row.p99_us,
                row.nonmin * 100.0);
  }
  return 0;
}

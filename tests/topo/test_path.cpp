#include "topo/path.hpp"

#include <gtest/gtest.h>

namespace dfly {
namespace {

/// True when consecutive routers in `path` are directly connected.
bool path_is_connected(const Dragonfly& topo, const RouterPath& path) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    const int a = path[i - 1];
    const int b = path[i];
    if (topo.group_of_router(a) == topo.group_of_router(b)) continue;  // local: all-to-all
    bool linked = false;
    for (int k = 0; k < topo.params().h; ++k) {
      if (topo.global_peer(a, k).router == b) {
        linked = true;
        break;
      }
    }
    if (!linked) return false;
  }
  return true;
}

class PathTest : public ::testing::TestWithParam<DragonflyParams> {
 protected:
  Dragonfly topo_{GetParam()};
  PathOracle oracle_{topo_};
};

TEST_P(PathTest, MinimalPathsHaveAtMostThreeHops) {
  Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    const int src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo_.num_routers())));
    const int dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo_.num_routers())));
    const RouterPath path = oracle_.minimal(src, dst, &rng);
    EXPECT_LE(path.size(), 4u);  // <= 3 hops
    EXPECT_EQ(path.front(), src);
    EXPECT_EQ(path.back(), dst);
    EXPECT_TRUE(path_is_connected(topo_, path));
  }
}

TEST_P(PathTest, MinimalHopsMatchesEnumeratedPath) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const int src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo_.num_routers())));
    const int dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo_.num_routers())));
    const int hops = oracle_.minimal_hops(src, dst);
    const RouterPath best = oracle_.minimal(src, dst, nullptr);
    EXPECT_LE(hops, static_cast<int>(best.size()) - 1);
    if (src == dst) {
      EXPECT_EQ(hops, 0);
    }
  }
}

TEST_P(PathTest, ValiantPathTraversesIntermediateGroup) {
  Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const int src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo_.num_routers())));
    const int dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo_.num_routers())));
    const int sg = topo_.group_of_router(src);
    const int dg = topo_.group_of_router(dst);
    if (sg == dg) continue;
    int ig = sg;
    while (ig == sg || ig == dg) {
      ig = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo_.num_groups())));
    }
    const RouterPath path = oracle_.valiant(src, dst, ig, -1, &rng);
    EXPECT_EQ(path.front(), src);
    EXPECT_EQ(path.back(), dst);
    EXPECT_TRUE(path_is_connected(topo_, path));
    bool visited_ig = false;
    for (const int r : path) visited_ig = visited_ig || topo_.group_of_router(r) == ig;
    EXPECT_TRUE(visited_ig);
    EXPECT_LE(path.size(), 6u);  // <= 5 hops for the group variant
  }
}

TEST_P(PathTest, ValiantThroughSpecificRouterVisitsIt) {
  Rng rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    const int src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo_.num_routers())));
    const int dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo_.num_routers())));
    const int sg = topo_.group_of_router(src);
    const int dg = topo_.group_of_router(dst);
    if (sg == dg) continue;
    int ig = sg;
    while (ig == sg || ig == dg) {
      ig = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo_.num_groups())));
    }
    const int ir = topo_.router_id(
        ig, static_cast<int>(rng.next_below(static_cast<std::uint64_t>(topo_.params().a))));
    const RouterPath path = oracle_.valiant(src, dst, ig, ir, &rng);
    bool visited = false;
    for (const int r : path) visited = visited || r == ir;
    EXPECT_TRUE(visited);
    EXPECT_TRUE(path_is_connected(topo_, path));
    EXPECT_LE(path.size(), 7u);  // <= 6 hops for the node variant
  }
}

TEST_P(PathTest, PathDiversityMatchesGatewayCount) {
  const int src = 0;
  for (int dst = 0; dst < topo_.num_routers(); ++dst) {
    const int count = oracle_.count_minimal(src, dst);
    if (topo_.group_of_router(dst) == topo_.group_of_router(src)) {
      EXPECT_EQ(count, 1);
    } else {
      EXPECT_EQ(count, topo_.links_per_group_pair() == 1
                           ? static_cast<int>(topo_.gateways(0, topo_.group_of_router(dst)).size())
                           : count);
      EXPECT_GE(count, 1);
    }
  }
}

TEST_P(PathTest, PlanBackedOracleAnswersIdentically) {
  // The blueprint-shared PathPlan must be observationally equivalent to the
  // on-demand gateway scans for EVERY router pair — Study cells answer path
  // queries off the shared tables, so any divergence would silently change
  // simulation behaviour between --no-blueprint and the default.
  const PathPlan plan = PathPlan::build(topo_);
  const PathOracle fast(topo_, &plan);
  for (int s = 0; s < topo_.num_routers(); ++s) {
    for (int d = 0; d < topo_.num_routers(); ++d) {
      ASSERT_EQ(fast.minimal_hops(s, d), oracle_.minimal_hops(s, d)) << s << "->" << d;
      ASSERT_EQ(fast.count_minimal(s, d), oracle_.count_minimal(s, d)) << s << "->" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, PathTest,
                         ::testing::Values(DragonflyParams{1, 2, 2, 5},
                                           DragonflyParams{2, 4, 2, 9},
                                           DragonflyParams{4, 8, 4, 33}),
                         [](const auto& info) {
                           const DragonflyParams& p = info.param;
                           return "p" + std::to_string(p.p) + "a" + std::to_string(p.a) + "h" +
                                  std::to_string(p.h) + "g" + std::to_string(p.g);
                         });

}  // namespace
}  // namespace dfly

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/mutex.hpp"

#include "mpi/job.hpp"
#include "net/config.hpp"
#include "net/fault.hpp"
#include "net/link.hpp"
#include "routing/q_adaptive.hpp"
#include "routing/q_table.hpp"
#include "routing/ugal.hpp"
#include "sim/time.hpp"
#include "stats/link_stats.hpp"
#include "topo/dragonfly.hpp"
#include "topo/path.hpp"
#include "topo/placement.hpp"

/// The immutable "plan" of a simulation cell.
///
/// Every paper figure sweeps many (config, seed) cells over the *same*
/// 1,056-node Dragonfly; historically each cell rebuilt identical topology,
/// wiring, path, placement and routing-parameter state from scratch, and that
/// per-cell constant was the reason the `--jobs` worker cap existed. A
/// SystemBlueprint factors the read-only half out: everything cells of the
/// same *shape* share — the Dragonfly wiring tables, the resolved per-port
/// wiring plan, precomputed minimal-path structures, the placement candidate
/// pool, NetConfig/protocol/QoS/fault plan, and the routing factory's static
/// parameterisation (including Q-adaptive's unloaded initial estimates) —
/// into one hash-keyed snapshot built once per unique shape and shared
/// across ParallelRunner workers via shared_ptr.
///
/// Blueprints are deeply immutable after build(): nothing in this class
/// mutates during a run (const-enforced), so concurrent cells can read one
/// instance without synchronisation. Mutable per-cell state — router/NIC
/// buffers, packet pool, stats, Q-tables, UGAL queue reads, Rng streams —
/// stays in the cell (see core/arena.hpp for how *that* half is recycled).
///
/// Sharing is behaviour-preserving by construction: a blueprint's content is
/// a pure function of the shape, so output is byte-identical whether each
/// cell builds its own copy or many cells share one. The `--no-blueprint`
/// CLI flag and the DFSIM_NO_BLUEPRINT environment variable disable
/// cross-cell sharing as an escape hatch (mirroring `--no-arena`).
namespace dfly {

struct StudyConfig;

/// The shape of a cell: every StudyConfig field that determines blueprint
/// content. Seed, scale, observability and time limit are deliberately
/// absent — they parameterise the mutable per-cell state only.
struct BlueprintKey {
  DragonflyParams topo{};
  NetConfig net{};
  std::string routing;
  PlacementPolicy placement{PlacementPolicy::kRandom};
  mpi::ProtocolConfig protocol{};
  routing::UgalParams ugal{};
  routing::QAdaptiveParams qadp{};
  std::vector<LinkFault> faults;

  bool operator==(const BlueprintKey&) const = default;
  std::size_t hash() const;

  static BlueprintKey of(const StudyConfig& config);
};

/// One immutable, shareable system plan. Build with SystemBlueprint::build()
/// (or through a BlueprintCache); hold by shared_ptr<const SystemBlueprint>.
class SystemBlueprint {
 public:
  /// Resolved wiring of one router output port: the far end of the wire, its
  /// propagation latency and its statistics class. Terminal ports carry
  /// peer_router == -1 (the peer is the NIC of node node_id(router, port)).
  struct PortPlan {
    std::int32_t peer_router{-1};
    std::int16_t peer_port{-1};
    bool global{false};
    SimTime latency{0};
    LinkClass cls{LinkClass::kTerminal};
  };

  /// Build the full plan for one config shape. Pure: equal shapes produce
  /// blueprints with identical content.
  static std::shared_ptr<const SystemBlueprint> build(const StudyConfig& config);

  const BlueprintKey& key() const { return key_; }
  const Dragonfly& topo() const { return topo_; }
  const LinkMap& links() const { return links_; }
  const NetConfig& net() const { return key_.net; }
  const mpi::ProtocolConfig& protocol() const { return key_.protocol; }
  const FaultPlan& faults() const { return faults_; }
  const std::string& routing_name() const { return key_.routing; }
  const routing::UgalParams& ugal() const { return key_.ugal; }
  const routing::QAdaptiveParams& qadp() const { return key_.qadp; }

  /// Wiring plan entry for output `port` of `router`.
  const PortPlan& port(int router, int port) const {
    return ports_[static_cast<std::size_t>(router) * static_cast<std::size_t>(radix_) +
                  static_cast<std::size_t>(port)];
  }

  /// Precomputed minimal-path tables. Construct `PathOracle(topo(), &paths())`
  /// to answer hop-count/diversity queries off the tables; equivalence with
  /// the on-demand gateway scans is test-enforced (tests/topo/test_path.cpp).
  /// No simulation hot path queries the oracle today — routers decide hop by
  /// hop — so this exists for analysis/report consumers and costs ~1 ms per
  /// shape to build.
  const PathPlan& paths() const { return paths_; }

  /// The machine's full node enumeration in id order (Placer candidate pool).
  const std::vector<int>& placement_pool() const { return placement_pool_; }

  /// Shared unloaded initial Q-tables — non-null only when the shape's
  /// routing is "Q-adp" (pass to RoutingContext::qinit).
  const std::vector<QTable>* initial_qtables() const {
    return qinit_.empty() ? nullptr : &qinit_;
  }

  /// Wall-clock spent constructing this blueprint (bench_memory reports it).
  double build_ms() const { return build_ms_; }

  /// Rough resident footprint of the shared tables, for bench reporting.
  std::size_t footprint_bytes() const;

 private:
  explicit SystemBlueprint(BlueprintKey key);

  BlueprintKey key_;
  Dragonfly topo_;
  LinkMap links_;
  int radix_;
  FaultPlan faults_;
  std::vector<PortPlan> ports_;
  PathPlan paths_;
  std::vector<int> placement_pool_;
  std::vector<QTable> qinit_;
  double build_ms_{0};
};

/// Concurrent blueprint cache: one instance is shared by every worker of a
/// ParallelRunner call, so all cells of the same shape get the same
/// shared_ptr. get_or_build holds the lock across a build — the common race
/// is every worker asking for the *same* first shape, and blocking the
/// others is exactly what prevents duplicate builds.
class BlueprintCache {
 public:
  struct Stats {
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    double build_ms_total{0};
  };

  BlueprintCache() = default;
  BlueprintCache(const BlueprintCache&) = delete;
  BlueprintCache& operator=(const BlueprintCache&) = delete;

  std::shared_ptr<const SystemBlueprint> get_or_build(const StudyConfig& config);

  Stats stats() const;
  std::size_t size() const;

  /// The cache bound to the calling thread (nullptr when none is bound or
  /// blueprint sharing is globally disabled at bind time). ParallelRunner
  /// binds one cache across all its workers; Study picks it up automatically.
  static BlueprintCache* current();

 private:
  mutable Mutex mutex_;
  // hash -> entries with that hash (collisions resolved by key equality).
  // Workers race get_or_build on the same shapes, so both the table and the
  // stats are provably lock-protected (see core/thread_annotations.hpp).
  std::unordered_map<std::size_t, std::vector<std::shared_ptr<const SystemBlueprint>>> by_hash_
      GUARDED_BY(mutex_);
  Stats stats_ GUARDED_BY(mutex_);
};

/// RAII binding of a cache to the calling thread (see BlueprintCache::
/// current()). Restores the previous binding on destruction, so bindings
/// nest. Binding nullptr is a no-op placeholder (keeps call sites branchless).
class ScopedBlueprintCacheBinding {
 public:
  explicit ScopedBlueprintCacheBinding(BlueprintCache* cache);
  ~ScopedBlueprintCacheBinding();
  ScopedBlueprintCacheBinding(const ScopedBlueprintCacheBinding&) = delete;
  ScopedBlueprintCacheBinding& operator=(const ScopedBlueprintCacheBinding&) = delete;

 private:
  BlueprintCache* previous_;
};

/// Global escape hatch: false disables cross-cell blueprint sharing (every
/// Study builds a private plan, as before this refactor). Defaults to true
/// unless the DFSIM_NO_BLUEPRINT environment variable is set to anything but
/// "0". The `--no-blueprint` flag on dflysim and the benches calls
/// set_blueprint_enabled(false). Output is byte-identical either way.
bool blueprint_enabled();
void set_blueprint_enabled(bool enabled);

}  // namespace dfly

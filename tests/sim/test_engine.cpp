#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <queue>
#include <vector>

#include "sim/rng.hpp"

namespace dfly {
namespace {

class Recorder final : public Component {
 public:
  void handle(Engine& engine, const Event& event) override {
    log.push_back({engine.now(), event.kind, event.a});
  }
  struct Entry {
    SimTime when;
    std::uint32_t kind;
    std::uint64_t a;
  };
  std::vector<Entry> log;
};

TEST(Engine, StartsAtTimeZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
  EXPECT_TRUE(engine.empty());
  EXPECT_EQ(engine.executed(), 0u);
}

TEST(Engine, ExecutesEventsInTimeOrder) {
  Engine engine;
  Recorder recorder;
  engine.schedule_at(30, recorder, 3);
  engine.schedule_at(10, recorder, 1);
  engine.schedule_at(20, recorder, 2);
  engine.run();
  ASSERT_EQ(recorder.log.size(), 3u);
  EXPECT_EQ(recorder.log[0].kind, 1u);
  EXPECT_EQ(recorder.log[1].kind, 2u);
  EXPECT_EQ(recorder.log[2].kind, 3u);
  EXPECT_EQ(engine.now(), 30);
}

TEST(Engine, SameTimeEventsFireInScheduleOrder) {
  Engine engine;
  Recorder recorder;
  for (std::uint64_t i = 0; i < 100; ++i) engine.schedule_at(5, recorder, 0, i);
  engine.run();
  ASSERT_EQ(recorder.log.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(recorder.log[i].a, i);
}

TEST(Engine, ScheduleInIsRelativeToNow) {
  Engine engine;
  Recorder recorder;
  engine.call_at(100, [&] { engine.schedule_in(50, recorder, 7); });
  engine.run();
  ASSERT_EQ(recorder.log.size(), 1u);
  EXPECT_EQ(recorder.log[0].when, 150);
}

TEST(Engine, RunUntilStopsAtBoundaryInclusive) {
  Engine engine;
  Recorder recorder;
  engine.schedule_at(10, recorder, 1);
  engine.schedule_at(20, recorder, 2);
  engine.schedule_at(21, recorder, 3);
  engine.run(20);
  EXPECT_EQ(recorder.log.size(), 2u);
  EXPECT_EQ(engine.queued(), 1u);
  engine.run(21);
  EXPECT_EQ(recorder.log.size(), 3u);
}

TEST(Engine, WallDeadlineInThePastFiresBeforeTheFirstEvent) {
  Engine engine;
  Recorder recorder;
  engine.schedule_at(10, recorder, 1);
  engine.set_wall_deadline(std::chrono::steady_clock::now() - std::chrono::seconds(1));
  EXPECT_TRUE(engine.has_wall_deadline());
  EXPECT_THROW(engine.run(), WallDeadlineExceeded);
  // The check precedes dispatch, so the event is still queued...
  EXPECT_TRUE(recorder.log.empty());
  EXPECT_EQ(engine.queued(), 1u);
  // ...and a disarmed engine finishes the run normally.
  engine.clear_wall_deadline();
  EXPECT_FALSE(engine.has_wall_deadline());
  engine.run();
  ASSERT_EQ(recorder.log.size(), 1u);
  EXPECT_EQ(recorder.log[0].kind, 1u);
}

TEST(Engine, WallDeadlineAbandonsARunawayEventChain) {
  // A self-rescheduling chain never drains the queue: without the watchdog
  // run() would spin forever. With it armed the run is abandoned in bounded
  // real time and the engine stays tear-down-able.
  Engine engine;
  struct Chain final : Component {
    void handle(Engine& engine, const Event&) override { engine.schedule_in(1, *this, 0); }
  } chain;
  engine.schedule_at(0, chain, 0);
  engine.set_wall_deadline(std::chrono::steady_clock::now() + std::chrono::milliseconds(10));
  EXPECT_THROW(engine.run(), WallDeadlineExceeded);
  EXPECT_GT(engine.executed(), 0u);
}

TEST(Engine, StepExecutesExactlyOneEvent) {
  Engine engine;
  Recorder recorder;
  engine.schedule_at(1, recorder, 1);
  engine.schedule_at(2, recorder, 2);
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(recorder.log.size(), 1u);
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
}

TEST(Engine, EventsScheduledDuringExecutionAreProcessed) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) engine.call_at(engine.now() + 1, recurse);
  };
  engine.call_at(0, recurse);
  engine.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(engine.now(), 9);
}

TEST(Engine, ClearDropsPendingEvents) {
  Engine engine;
  Recorder recorder;
  engine.schedule_at(10, recorder, 1);
  engine.clear();
  engine.run();
  EXPECT_TRUE(recorder.log.empty());
}

TEST(Engine, ExecutedCounterAdvances) {
  Engine engine;
  Recorder recorder;
  for (int i = 0; i < 17; ++i) engine.schedule_at(i, recorder, 0);
  engine.run();
  EXPECT_EQ(engine.executed(), 17u);
}

TEST(Engine, PayloadWordsAreDeliveredVerbatim) {
  Engine engine;
  Recorder recorder;
  engine.schedule_at(1, recorder, 42, 0xDEADBEEFCAFEBABEull);
  engine.run();
  ASSERT_EQ(recorder.log.size(), 1u);
  EXPECT_EQ(recorder.log[0].kind, 42u);
  EXPECT_EQ(recorder.log[0].a, 0xDEADBEEFCAFEBABEull);
}

TEST(Engine, NowStaysAtLastEventWhenQueueDrainsEarly) {
  // Documented semantics: the clock only advances with events; run(until)
  // does not bump now() to `until` when the queue empties first.
  Engine engine;
  Recorder recorder;
  engine.schedule_at(30, recorder, 1);
  engine.run(1000);
  EXPECT_EQ(engine.now(), 30);
  engine.run(2000);  // empty run: clock must not move
  EXPECT_EQ(engine.now(), 30);
}

TEST(Engine, SameTimeFloodWithInterleavedSchedulingKeepsFifo) {
  // Handlers schedule more events at the *same* timestamp mid-batch; they
  // must fire after every already-scheduled same-time event (seq order).
  class Chainer final : public Component {
   public:
    explicit Chainer(int spawns) : spawns_(spawns) {}
    void handle(Engine& engine, const Event& event) override {
      order.push_back(event.a);
      if (spawns_ > 0) {
        --spawns_;
        engine.schedule_at(engine.now(), *this, 0, next_id++);
      }
    }
    std::vector<std::uint64_t> order;
    std::uint64_t next_id{100};

   private:
    int spawns_;
  };
  Engine engine;
  Chainer chainer(50);
  for (std::uint64_t i = 0; i < 100; ++i) engine.schedule_at(5, chainer, 0, i);
  engine.run();
  ASSERT_EQ(chainer.order.size(), 150u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(chainer.order[i], i);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(chainer.order[100 + i], 100 + i);
  EXPECT_EQ(engine.now(), 5);
}

TEST(Engine, RandomizedStressMatchesReferencePriorityQueue) {
  // Cross-check the 4-ary heap against std::priority_queue on (when, seq)
  // under interleaved schedule bursts and partial drains.
  struct Ref {
    SimTime when;
    std::uint64_t id;
  };
  const auto after = [](const Ref& x, const Ref& y) {
    return x.when > y.when || (x.when == y.when && x.id > y.id);
  };
  std::priority_queue<Ref, std::vector<Ref>, decltype(after)> reference(after);
  std::vector<Ref> expected;

  Engine engine;
  Recorder recorder;
  Rng rng(99);
  std::uint64_t next_id = 0;
  SimTime horizon = 0;
  for (int round = 0; round < 200; ++round) {
    const int burst = static_cast<int>(rng.next_below(40));
    for (int i = 0; i < burst; ++i) {
      const SimTime when = horizon + static_cast<SimTime>(rng.next_below(300));
      engine.schedule_at(when, recorder, 0, next_id);
      reference.push(Ref{when, next_id});
      ++next_id;
    }
    horizon += static_cast<SimTime>(rng.next_below(200));
    engine.run(horizon);
    while (!reference.empty() && reference.top().when <= horizon) {
      expected.push_back(reference.top());
      reference.pop();
    }
  }
  engine.run();
  while (!reference.empty()) {
    expected.push_back(reference.top());
    reference.pop();
  }
  ASSERT_EQ(recorder.log.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(recorder.log[i].when, expected[i].when) << "at event " << i;
    ASSERT_EQ(recorder.log[i].a, expected[i].id) << "at event " << i;
  }
}

TEST(Engine, ClosuresAreReclaimedAfterFiring) {
  Engine engine;
  int fired = 0;
  std::function<void()> tick = [&] {
    // The just-fired closure's slot is already free when its body runs.
    EXPECT_EQ(engine.live_closures(), 0u);
    if (++fired < 200) engine.call_in(10, tick);
  };
  engine.call_in(0, tick);
  EXPECT_EQ(engine.live_closures(), 1u);
  engine.run();
  EXPECT_EQ(fired, 200);
  EXPECT_EQ(engine.live_closures(), 0u);
}

TEST(Engine, ClearInsideHandlerDropsRestOfBatch) {
  class Clearer final : public Component {
   public:
    void handle(Engine& engine, const Event&) override {
      ++count;
      engine.clear();
    }
    int count{0};
  };
  Engine engine;
  Clearer clearer;
  Recorder recorder;
  engine.schedule_at(10, clearer, 0);
  for (int i = 0; i < 4; ++i) engine.schedule_at(10, recorder, 0);
  engine.schedule_at(20, recorder, 0);
  engine.run();
  EXPECT_EQ(clearer.count, 1);
  EXPECT_TRUE(recorder.log.empty());
  EXPECT_TRUE(engine.empty());
}

TEST(Engine, RunResumesInterruptedSameTimeBatch) {
  // A handler throwing mid-batch must not strand or drop the rest of the
  // batch: the next run() dispatches the remaining same-time events before
  // anything later-timestamped.
  class Thrower final : public Component {
   public:
    void handle(Engine&, const Event&) override { throw std::runtime_error("boom"); }
  };
  Engine engine;
  Recorder recorder;
  Thrower thrower;
  engine.schedule_at(5, recorder, 0, 1);
  engine.schedule_at(5, thrower, 0);
  engine.schedule_at(5, recorder, 0, 2);
  engine.schedule_at(9, recorder, 0, 3);
  EXPECT_THROW(engine.run(), std::runtime_error);
  ASSERT_EQ(recorder.log.size(), 1u);
  EXPECT_EQ(engine.queued(), 2u);  // the stranded batch entry + the t=9 event
  engine.run();
  ASSERT_EQ(recorder.log.size(), 3u);
  EXPECT_EQ(recorder.log[1].a, 2u);  // batch remainder first...
  EXPECT_EQ(recorder.log[2].a, 3u);  // ...then the later event
}

TEST(Engine, ClearInsideClosureIsSafe) {
  Engine engine;
  int fired = 0;
  engine.call_at(5, [&] {
    ++fired;
    engine.clear();
  });
  engine.call_at(5, [&] { ++fired; });  // dropped by the clear above
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.live_closures(), 0u);
}

TEST(Engine, ManyEventsStressOrdering) {
  Engine engine;
  Recorder recorder;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    engine.schedule_at(static_cast<SimTime>(rng.next_below(1000)), recorder, 0);
  }
  engine.run();
  ASSERT_EQ(recorder.log.size(), 10000u);
  for (std::size_t i = 1; i < recorder.log.size(); ++i) {
    EXPECT_LE(recorder.log[i - 1].when, recorder.log[i].when);
  }
}

}  // namespace
}  // namespace dfly

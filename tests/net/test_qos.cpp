// Tests for QoS traffic classes (net/qos.hpp + DWRR arbitration in Router).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/study.hpp"
#include "net/qos.hpp"
#include "workloads/motifs.hpp"
#include "workloads/synthetic.hpp"

namespace dfly {
namespace {

TEST(QosConfig, DefaultsDisabled) {
  const QosConfig qos;
  EXPECT_FALSE(qos.enabled());
  EXPECT_EQ(qos.num_classes, 1);
  EXPECT_EQ(qos.weight_of(0), 1);
  EXPECT_EQ(qos.weight_of(7), 1);  // out of range -> default weight
}

TEST(QosConfig, WeightsClampToAtLeastOne) {
  QosConfig qos;
  qos.num_classes = 3;
  qos.weights = {4, 0, -2};
  EXPECT_TRUE(qos.enabled());
  EXPECT_EQ(qos.weight_of(0), 4);
  EXPECT_EQ(qos.weight_of(1), 1);
  EXPECT_EQ(qos.weight_of(2), 1);
}

TEST(TrafficClassMap, AssignAndLookup) {
  TrafficClassMap map(3);
  EXPECT_EQ(map.klass(0), 0);
  map.assign(1, 2);
  EXPECT_EQ(map.klass(1), 2);
  map.assign(5, 1);  // grows on demand
  EXPECT_EQ(map.klass(5), 1);
  EXPECT_EQ(map.klass(-1), 0);   // invalid ids ride class 0
  EXPECT_EQ(map.klass(99), 0);
  map.assign(0, -3);             // negative class clamps to 0
  EXPECT_EQ(map.klass(0), 0);
}

/// Two identical flooding jobs; returns (comm_time job0, comm_time job1).
std::pair<double, double> run_two_floods(QosConfig qos, int cls0, int cls1,
                                         std::uint64_t seed = 5) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";  // maximal contention: no adaptive escape
  config.seed = seed;
  config.net.qos = std::move(qos);
  Study study(std::move(config));

  workloads::UniformRandomParams p;
  p.msg_bytes = 4096;
  p.iterations = 150;
  p.interval = 0;  // flood
  p.window = 16;
  const int a = study.add_motif(std::make_unique<workloads::UniformRandomMotif>(p), 24, "A");
  const int b = study.add_motif(std::make_unique<workloads::UniformRandomMotif>(p), 24, "B");
  study.set_traffic_class(a, cls0);
  study.set_traffic_class(b, cls1);
  const Report report = study.run();
  EXPECT_TRUE(report.completed);
  return {report.apps[0].comm_mean_ms, report.apps[1].comm_mean_ms};
}

TEST(QosDwrr, HigherWeightClassFinishesFaster) {
  QosConfig qos;
  qos.num_classes = 2;
  qos.weights = {8, 1};
  const auto [fast, slow] = run_two_floods(qos, 0, 1);
  // The 8x-weighted class must see clearly less blocked time than the
  // 1x class when both flood the same fabric.
  EXPECT_LT(fast * 1.3, slow) << "fast=" << fast << " slow=" << slow;
}

TEST(QosDwrr, EqualWeightsAreFair) {
  QosConfig qos;
  qos.num_classes = 2;
  qos.weights = {1, 1};
  const auto [a, b] = run_two_floods(qos, 0, 1);
  const double ratio = a < b ? b / a : a / b;
  EXPECT_LT(ratio, 1.25) << "a=" << a << " b=" << b;
}

TEST(QosDwrr, SameClassBehavesLikeFifoFairness) {
  // Both jobs in class 0 of an enabled-QoS config: no differentiation.
  QosConfig qos;
  qos.num_classes = 2;
  qos.weights = {4, 1};
  const auto [a, b] = run_two_floods(qos, 0, 0);
  const double ratio = a < b ? b / a : a / b;
  EXPECT_LT(ratio, 1.25) << "a=" << a << " b=" << b;
}

TEST(QosDwrr, WeightOrderingIsMonotone) {
  // Swapping the class assignment must swap who wins.
  QosConfig qos;
  qos.num_classes = 2;
  qos.weights = {6, 1};
  const auto [a0, b0] = run_two_floods(qos, 0, 1);
  const auto [a1, b1] = run_two_floods(qos, 1, 0);
  EXPECT_LT(a0, b0);
  EXPECT_GT(a1, b1);
}

TEST(QosDwrr, DisabledQosMatchesBaseline) {
  // num_classes == 1 must reproduce the exact FIFO-arbitration results:
  // compare against a run with default config (bitwise-deterministic
  // engine, same seed -> same makespan).
  StudyConfig base;
  base.topo = DragonflyParams::tiny();
  base.routing = "PAR";
  base.seed = 21;
  Study study_base(std::move(base));
  workloads::ShiftParams p;
  p.iterations = 80;
  study_base.add_motif(std::make_unique<workloads::ShiftMotif>(p), 24, "S");
  const Report r_base = study_base.run();

  StudyConfig qos_cfg;
  qos_cfg.topo = DragonflyParams::tiny();
  qos_cfg.routing = "PAR";
  qos_cfg.seed = 21;
  qos_cfg.net.qos.num_classes = 1;  // explicitly disabled
  qos_cfg.net.qos.weights = {3};    // ignored
  Study study_qos(std::move(qos_cfg));
  study_qos.add_motif(std::make_unique<workloads::ShiftMotif>(p), 24, "S");
  const Report r_qos = study_qos.run();

  ASSERT_TRUE(r_base.completed);
  ASSERT_TRUE(r_qos.completed);
  EXPECT_EQ(r_base.makespan, r_qos.makespan);
  EXPECT_EQ(r_base.events_executed, r_qos.events_executed);
}

TEST(QosDwrr, ManyClassesComplete) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "UGALg";
  config.seed = 9;
  config.net.qos.num_classes = 4;
  config.net.qos.weights = {8, 4, 2, 1};
  Study study(std::move(config));
  workloads::UniformRandomParams p;
  p.msg_bytes = 2048;
  p.iterations = 60;
  p.interval = 0;
  for (int j = 0; j < 4; ++j) {
    const int id = study.add_motif(std::make_unique<workloads::UniformRandomMotif>(p), 12,
                                   "J" + std::to_string(j));
    study.set_traffic_class(id, j);
  }
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  // Comm times must be (weakly) ordered with the weights.
  EXPECT_LT(report.apps[0].comm_mean_ms, report.apps[3].comm_mean_ms);
}

TEST(QosDwrr, OutOfRangeClassClampsToLast) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  config.net.qos.num_classes = 2;
  config.net.qos.weights = {4, 1};
  Study study(std::move(config));
  workloads::ShiftParams p;
  p.iterations = 30;
  const int id = study.add_motif(std::make_unique<workloads::ShiftMotif>(p), 16, "S");
  study.set_traffic_class(id, 9);  // beyond num_classes: clamps in router
  const Report report = study.run();
  EXPECT_TRUE(report.completed);
}

TEST(Study, TrafficClassValidation) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  Study study(std::move(config));
  workloads::ShiftParams p;
  const int id = study.add_motif(std::make_unique<workloads::ShiftMotif>(p), 8, "S");
  EXPECT_THROW(study.set_traffic_class(id + 1, 0), std::out_of_range);
  EXPECT_THROW(study.set_traffic_class(-1, 0), std::out_of_range);
}

}  // namespace
}  // namespace dfly

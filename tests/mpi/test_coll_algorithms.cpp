// Tests for the extended collective algorithms (mpi/coll.hpp): every
// algorithm must complete on arbitrary rank counts, move the analytically
// expected volume, and keep all ranks' tag sequences aligned.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/study.hpp"
#include "mpi/coll.hpp"
#include "workloads/motifs.hpp"

namespace dfly {
namespace {

using mpi::coll::AllreduceAlg;
using mpi::coll::AlltoallAlg;

/// Motif that runs one collective and records per-rank byte counts.
class OneCollectiveMotif final : public mpi::Motif {
 public:
  enum class Op {
    kAllreduce,
    kAlltoall,
    kBcast,
    kReduce,
    kGather,
    kScatter,
    kAllgather,
    kBarrier,
  };

  OneCollectiveMotif(Op op, std::int64_t bytes, AllreduceAlg ar_alg = AllreduceAlg::kRing,
                     AlltoallAlg a2a_alg = AlltoallAlg::kRing, int root = 0)
      : op_(op), bytes_(bytes), ar_alg_(ar_alg), a2a_alg_(a2a_alg), root_(root) {}

  std::string name() const override { return "OneCollective"; }

  mpi::Task run(mpi::RankCtx& ctx) const override {
    switch (op_) {
      case Op::kAllreduce: co_await mpi::coll::allreduce(ctx, bytes_, ar_alg_); break;
      case Op::kAlltoall: {
        std::vector<int> members(static_cast<std::size_t>(ctx.size()));
        for (int i = 0; i < ctx.size(); ++i) members[static_cast<std::size_t>(i)] = i;
        co_await mpi::coll::alltoall(ctx, bytes_, members, a2a_alg_);
        break;
      }
      case Op::kBcast: co_await mpi::coll::bcast_binomial(ctx, root_, bytes_); break;
      case Op::kReduce: co_await mpi::coll::reduce_binomial(ctx, root_, bytes_); break;
      case Op::kGather: co_await mpi::coll::gather_binomial(ctx, root_, bytes_); break;
      case Op::kScatter: co_await mpi::coll::scatter_binomial(ctx, root_, bytes_); break;
      case Op::kAllgather: co_await mpi::coll::allgather_ring(ctx, bytes_); break;
      case Op::kBarrier: co_await mpi::coll::barrier_dissemination(ctx); break;
    }
    ctx.mark_iteration();
  }

 private:
  Op op_;
  std::int64_t bytes_;
  AllreduceAlg ar_alg_;
  AlltoallAlg a2a_alg_;
  int root_;
};

/// Run `motif` on `ranks` nodes of the tiny system; returns the report.
Report run_collective(std::unique_ptr<mpi::Motif> motif, int ranks,
                      const std::string& routing = "MIN") {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = routing;
  config.seed = 7;
  Study study(std::move(config));
  study.add_motif(std::move(motif), ranks, "coll");
  return study.run();
}

// ---------------------------------------------------------------------------
// Completion across algorithms and rank counts (including non-powers of two
// and the degenerate 1-rank case).
// ---------------------------------------------------------------------------

class AllreduceCompletes
    : public ::testing::TestWithParam<std::tuple<AllreduceAlg, int>> {};

TEST_P(AllreduceCompletes, AllRanksFinish) {
  const auto [alg, ranks] = GetParam();
  auto motif = std::make_unique<OneCollectiveMotif>(OneCollectiveMotif::Op::kAllreduce,
                                                    4096, alg);
  const Report report = run_collective(std::move(motif), ranks);
  EXPECT_TRUE(report.completed) << mpi::coll::to_string(alg) << " n=" << ranks;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgsAllSizes, AllreduceCompletes,
    ::testing::Combine(::testing::Values(AllreduceAlg::kBinaryTree, AllreduceAlg::kRing,
                                         AllreduceAlg::kRecursiveDoubling,
                                         AllreduceAlg::kHalvingDoubling),
                       ::testing::Values(1, 2, 3, 5, 8, 13, 16, 31)),
    [](const auto& info) {
      return std::string(mpi::coll::to_string(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

class AlltoallCompletes
    : public ::testing::TestWithParam<std::tuple<AlltoallAlg, int>> {};

TEST_P(AlltoallCompletes, AllRanksFinish) {
  const auto [alg, ranks] = GetParam();
  auto motif = std::make_unique<OneCollectiveMotif>(
      OneCollectiveMotif::Op::kAlltoall, 2048, AllreduceAlg::kRing, alg);
  const Report report = run_collective(std::move(motif), ranks);
  EXPECT_TRUE(report.completed) << mpi::coll::to_string(alg) << " n=" << ranks;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgsAllSizes, AlltoallCompletes,
    ::testing::Combine(::testing::Values(AlltoallAlg::kRing, AlltoallAlg::kPairwise,
                                         AlltoallAlg::kBruck),
                       ::testing::Values(2, 3, 4, 7, 8, 16, 21)),
    [](const auto& info) {
      return std::string(mpi::coll::to_string(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Volume checks: the simulated traffic matches the algorithm's analytic cost.
// ---------------------------------------------------------------------------

TEST(RingAllreduce, MovesTwoPassesOfChunks) {
  // 8 ranks, 8000B payload -> chunk 1000B, every rank sends 2*7 chunks.
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  Study study(std::move(config));
  study.add_motif(std::make_unique<OneCollectiveMotif>(OneCollectiveMotif::Op::kAllreduce,
                                                       8000, AllreduceAlg::kRing),
                  8, "ring");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  const auto& job = study.job(0);
  for (int r = 0; r < job.size(); ++r) {
    EXPECT_EQ(job.rank(r).bytes_sent(), 2 * 7 * 1000) << "rank " << r;
    EXPECT_EQ(job.rank(r).messages_sent(), 2 * 7) << "rank " << r;
  }
}

TEST(RecursiveDoublingAllreduce, PowerOfTwoSendsLogRoundsFullPayload) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  Study study(std::move(config));
  study.add_motif(
      std::make_unique<OneCollectiveMotif>(OneCollectiveMotif::Op::kAllreduce, 5000,
                                           AllreduceAlg::kRecursiveDoubling),
      16, "rd");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  const auto& job = study.job(0);
  for (int r = 0; r < job.size(); ++r) {
    EXPECT_EQ(job.rank(r).bytes_sent(), 4 * 5000) << "rank " << r;  // log2(16) rounds
    EXPECT_EQ(job.rank(r).messages_sent(), 4) << "rank " << r;
  }
}

TEST(RecursiveDoublingAllreduce, NonPowerOfTwoFoldsExtraRanks) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  Study study(std::move(config));
  study.add_motif(
      std::make_unique<OneCollectiveMotif>(OneCollectiveMotif::Op::kAllreduce, 1000,
                                           AllreduceAlg::kRecursiveDoubling),
      6, "rd6");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  const auto& job = study.job(0);
  // n=6: pof2=4, rem=2. Ranks 0 and 2 (folded-out evens) send once.
  // Ranks 1 and 3 absorb, run 2 rounds, and send the result back: 3 sends.
  // Ranks 4 and 5 run only the 2 RD rounds.
  EXPECT_EQ(job.rank(0).messages_sent(), 1);
  EXPECT_EQ(job.rank(2).messages_sent(), 1);
  EXPECT_EQ(job.rank(1).messages_sent(), 3);
  EXPECT_EQ(job.rank(3).messages_sent(), 3);
  EXPECT_EQ(job.rank(4).messages_sent(), 2);
  EXPECT_EQ(job.rank(5).messages_sent(), 2);
}

TEST(HalvingDoublingAllreduce, MovesLessThanRecursiveDoubling) {
  // Rabenseifner is bandwidth-optimal: per-rank bytes ~ 2*(n-1)/n * payload,
  // vs. log2(n) * payload for recursive doubling.
  const std::int64_t payload = 64000;
  const int n = 16;
  const std::int64_t hd = mpi::coll::allreduce_bytes_per_rank(
      AllreduceAlg::kHalvingDoubling, n, payload);
  const std::int64_t rd = mpi::coll::allreduce_bytes_per_rank(
      AllreduceAlg::kRecursiveDoubling, n, payload);
  EXPECT_LT(hd, rd);
  EXPECT_NEAR(static_cast<double>(hd), 2.0 * (n - 1) / n * static_cast<double>(payload),
              static_cast<double>(payload) * 0.05);
}

TEST(HalvingDoublingAllreduce, SimulationMatchesAnalyticVolume) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  Study study(std::move(config));
  study.add_motif(
      std::make_unique<OneCollectiveMotif>(OneCollectiveMotif::Op::kAllreduce, 32768,
                                           AllreduceAlg::kHalvingDoubling),
      8, "hd8");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  const auto& job = study.job(0);
  // Power of two: every rank sends the same amount; compare to the analytic
  // per-rank cost (which has no fold contribution at n=8).
  const std::int64_t expected =
      mpi::coll::allreduce_bytes_per_rank(AllreduceAlg::kHalvingDoubling, 8, 32768);
  for (int r = 0; r < job.size(); ++r) {
    EXPECT_EQ(job.rank(r).bytes_sent(), expected) << "rank " << r;
  }
}

TEST(BcastBinomial, EveryNonRootReceivesOnce) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  Study study(std::move(config));
  study.add_motif(std::make_unique<OneCollectiveMotif>(OneCollectiveMotif::Op::kBcast, 10000,
                                                       AllreduceAlg::kRing,
                                                       AlltoallAlg::kRing, /*root=*/3),
                  13, "bcast");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  const auto& job = study.job(0);
  // Total sends across ranks == n-1 (each non-root receives exactly once).
  std::int64_t messages = 0;
  for (int r = 0; r < job.size(); ++r) messages += job.rank(r).messages_sent();
  EXPECT_EQ(messages, 12);
  // The root never receives, so it spends zero sends receiving; it sends to
  // ceil(log2 n) children.
  EXPECT_EQ(job.rank(3).messages_sent(), 4);  // 13 ranks -> 4 children
}

TEST(ReduceBinomial, MirrorOfBcastVolume) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  Study study(std::move(config));
  study.add_motif(std::make_unique<OneCollectiveMotif>(OneCollectiveMotif::Op::kReduce, 10000),
                  13, "reduce");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  const auto& job = study.job(0);
  std::int64_t messages = 0;
  for (int r = 0; r < job.size(); ++r) messages += job.rank(r).messages_sent();
  EXPECT_EQ(messages, 12);      // every non-root sends exactly once
  EXPECT_EQ(job.rank(0).messages_sent(), 0);  // root only receives
}

TEST(GatherBinomial, SubtreePayloadsAggregate) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  Study study(std::move(config));
  study.add_motif(std::make_unique<OneCollectiveMotif>(OneCollectiveMotif::Op::kGather, 1000),
                  8, "gather");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  const auto& job = study.job(0);
  // Total bytes = sum over non-root ranks of subtree_size * 1000.
  // n=8 binomial tree: rank 4 sends 4 blocks, 2 sends 2, 6 sends 2,
  // odd ranks send 1 each -> 4+2+2+1+1+1+1 = 12 blocks.
  std::int64_t bytes = 0;
  for (int r = 0; r < job.size(); ++r) bytes += job.rank(r).bytes_sent();
  EXPECT_EQ(bytes, 12 * 1000);
  EXPECT_EQ(job.rank(4).bytes_sent(), 4000);
}

TEST(ScatterBinomial, MirrorOfGatherVolume) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  Study study(std::move(config));
  study.add_motif(std::make_unique<OneCollectiveMotif>(OneCollectiveMotif::Op::kScatter, 1000),
                  8, "scatter");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  const auto& job = study.job(0);
  std::int64_t bytes = 0;
  for (int r = 0; r < job.size(); ++r) bytes += job.rank(r).bytes_sent();
  EXPECT_EQ(bytes, 12 * 1000);
  EXPECT_EQ(job.rank(0).bytes_sent(), 7000);  // root ships every other block
}

TEST(AllgatherRing, EveryRankSendsNMinusOneBlocks) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  Study study(std::move(config));
  study.add_motif(
      std::make_unique<OneCollectiveMotif>(OneCollectiveMotif::Op::kAllgather, 2500), 9, "ag");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  const auto& job = study.job(0);
  for (int r = 0; r < job.size(); ++r) {
    EXPECT_EQ(job.rank(r).bytes_sent(), 8 * 2500) << "rank " << r;
  }
}

TEST(BarrierDissemination, LogRoundsOfFlags) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  Study study(std::move(config));
  study.add_motif(std::make_unique<OneCollectiveMotif>(OneCollectiveMotif::Op::kBarrier, 0),
                  11, "barrier");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  const auto& job = study.job(0);
  for (int r = 0; r < job.size(); ++r) {
    EXPECT_EQ(job.rank(r).messages_sent(), 4) << "rank " << r;  // ceil(log2 11)
    EXPECT_EQ(job.rank(r).bytes_sent(), 4 * 8) << "rank " << r;
  }
}

TEST(AlltoallBruck, LogRoundsTotalVolumeMatchesRing) {
  // Bruck moves each of the n-1 foreign blocks through log2 hops on
  // average, so per-rank volume is bytes * sum over rounds of block counts;
  // total volume exceeds ring's (n-1)*bytes but rounds shrink to ceil(log2).
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "MIN";
  Study study(std::move(config));
  study.add_motif(std::make_unique<OneCollectiveMotif>(OneCollectiveMotif::Op::kAlltoall, 1000,
                                                       AllreduceAlg::kRing,
                                                       AlltoallAlg::kBruck),
                  8, "bruck");
  const Report report = study.run();
  ASSERT_TRUE(report.completed);
  const auto& job = study.job(0);
  // n=8: rounds at mask 1,2,4 ship 4 blocks each -> 12 blocks of 1000B.
  for (int r = 0; r < job.size(); ++r) {
    EXPECT_EQ(job.rank(r).bytes_sent(), 12 * 1000) << "rank " << r;
    EXPECT_EQ(job.rank(r).messages_sent(), 3) << "rank " << r;
  }
}

// ---------------------------------------------------------------------------
// Analytic helpers.
// ---------------------------------------------------------------------------

TEST(CollRounds, MatchTextbookValues) {
  EXPECT_EQ(mpi::coll::allreduce_rounds(AllreduceAlg::kRing, 8), 14);
  EXPECT_EQ(mpi::coll::allreduce_rounds(AllreduceAlg::kRecursiveDoubling, 8), 3);
  EXPECT_EQ(mpi::coll::allreduce_rounds(AllreduceAlg::kRecursiveDoubling, 6), 4);  // 2 fold + 2 RD
  EXPECT_EQ(mpi::coll::allreduce_rounds(AllreduceAlg::kHalvingDoubling, 8), 6);
  EXPECT_EQ(mpi::coll::alltoall_rounds(AlltoallAlg::kRing, 16), 15);
  EXPECT_EQ(mpi::coll::alltoall_rounds(AlltoallAlg::kBruck, 16), 4);
  EXPECT_EQ(mpi::coll::allreduce_rounds(AllreduceAlg::kRing, 1), 0);
}

TEST(CollNames, RoundTrip) {
  for (const auto alg : {AllreduceAlg::kBinaryTree, AllreduceAlg::kRing,
                         AllreduceAlg::kRecursiveDoubling, AllreduceAlg::kHalvingDoubling}) {
    EXPECT_EQ(mpi::coll::allreduce_from_string(mpi::coll::to_string(alg)), alg);
  }
  for (const auto alg :
       {AlltoallAlg::kRing, AlltoallAlg::kPairwise, AlltoallAlg::kBruck}) {
    EXPECT_EQ(mpi::coll::alltoall_from_string(mpi::coll::to_string(alg)), alg);
  }
  EXPECT_THROW(mpi::coll::allreduce_from_string("nope"), std::invalid_argument);
  EXPECT_THROW(mpi::coll::alltoall_from_string("nope"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The motif knob: CosmoFlow/DL can switch allreduce algorithms.
// ---------------------------------------------------------------------------

TEST(AllreducePeriodicMotif, RunsWithRingAlgorithm) {
  StudyConfig config;
  config.topo = DragonflyParams::tiny();
  config.routing = "PAR";
  Study study(std::move(config));
  workloads::AllreducePeriodicParams params = workloads::AllreducePeriodicMotif::cosmoflow();
  params.iterations = 2;
  params.msg_bytes = 100000;
  params.interval = 50 * kUs;
  params.algorithm = AllreduceAlg::kRing;
  study.add_motif(std::make_unique<workloads::AllreducePeriodicMotif>(std::move(params)), 16,
                  "CosmoRing");
  const Report report = study.run();
  EXPECT_TRUE(report.completed);
  EXPECT_GT(report.apps[0].total_msg_mb, 0.0);
}

}  // namespace
}  // namespace dfly

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "mpi/frame_pool.hpp"
#include "mpi/storage.hpp"
#include "net/nic.hpp"
#include "net/packet.hpp"
#include "net/router.hpp"
#include "sim/engine.hpp"
#include "stats/link_stats.hpp"
#include "stats/packet_log.hpp"

/// Per-worker reusable simulation storage.
///
/// Every paper figure is a sweep of independent (config, seed) cells, and
/// each cell historically rebuilt its Study — engine heap, packet pool,
/// router/NIC buffers, stats vectors — from scratch. A SimArena owns that
/// backing storage across cells: a ParallelRunner worker binds one arena for
/// its lifetime, the first cell grows the storage to its peak, and every
/// later cell of a similar shape re-initialises in place instead of
/// re-growing from empty. Reuse is carried by the containers themselves
/// (vector capacity, deque slabs, hash-map buckets survive the in-place
/// resets), so the carry-forward automatically tracks the high-water mark of
/// everything the worker has run so far.
///
/// Reuse is behaviour-preserving by construction: every reset path restores
/// the exact observable state of a fresh object (pool slot ids are handed
/// out 0, 1, 2, ... again; engine clocks and sequence numbers restart at 0),
/// so sweep output is bit-identical with the arena on or off — the
/// regression tests byte-compare both. The `--no-arena` CLI flag and the
/// DFSIM_NO_ARENA environment variable disable reuse globally as an escape
/// hatch.
///
/// Thread-safety: none — an arena belongs to exactly one worker thread, like
/// the cells it backs.
namespace dfly {

/// Reuse counters and high-water marks, reported by the memory bench into
/// BENCH_memory.json. Peaks are maxima across every cell the arena served.
struct ArenaStats {
  std::uint64_t cells{0};           ///< cells that borrowed this arena
  std::uint64_t router_reuses{0};   ///< router objects recycled in place
  std::uint64_t router_builds{0};   ///< router objects newly constructed
  std::uint64_t nic_reuses{0};
  std::uint64_t nic_builds{0};
  std::uint64_t rank_reuses{0};     ///< RankCtx objects recycled in place
  std::uint64_t rank_builds{0};     ///< RankCtx objects newly constructed
  std::size_t engine_peak_events{0};    ///< max concurrently-queued events
  std::size_t engine_event_capacity{0};  ///< carried key/payload capacity
  std::size_t closure_peak{0};           ///< max pooled closure slots
  std::size_t pool_peak_packets{0};      ///< max concurrently-live packets
  std::size_t pool_capacity{0};          ///< carried packet-slab slots
  std::size_t inflight_capacity{0};      ///< carried protocol-map slots (per job, max)
  std::size_t owners_capacity{0};        ///< carried message-routing map slots
  std::size_t match_capacity{0};         ///< carried match-list slots (per rank, max)
};

/// Reusable backing storage for one worker's simulation cells.
///
/// A Study borrows the arena for its lifetime (try_acquire/release): the
/// engine moves into the Study, and the network storage moves into its
/// Network. Only one Study can hold an arena at a time — a second concurrent
/// Study on the same thread simply runs without reuse.
class SimArena {
 public:
  SimArena() = default;
  SimArena(const SimArena&) = delete;
  SimArena& operator=(const SimArena&) = delete;

  /// Everything a Network allocates per cell, recycled as one unit. The
  /// routers/NICs keep their buffer storage between cells and are re-pointed
  /// with reinit(); pool and stats blocks reset in place.
  struct NetStorage {
    PacketPool pool;
    LinkStats stats;
    PacketLog log;
    std::vector<std::unique_ptr<Router>> routers;
    std::vector<std::unique_ptr<Nic>> nics;
  };

  /// Claim the arena for one cell. Returns false (and changes nothing) when
  /// another owner currently holds it.
  bool try_acquire(const void* owner);
  /// Release a claim taken with try_acquire (no-op for a non-owner).
  void release(const void* owner);
  bool in_use() const { return owner_ != nullptr; }

  /// Move the carried engine storage out (already reset; capacity and pooled
  /// closure slots intact). Pair with return_engine().
  Engine take_engine();
  /// Return the engine after a cell: peaks are recorded into stats(), then
  /// the engine is reset and stored for the next cell.
  void return_engine(Engine&& engine);

  /// Extra engines for the secondary domains of a parallel cell
  /// (--cell-threads, src/sim/pdes.hpp): same recycle lifecycle as the
  /// primary engine, one pooled engine per domain the worker has ever run.
  Engine take_extra_engine();
  void return_extra_engine(Engine&& engine);

  /// Move the carried network storage out. The pool comes back reset; the
  /// router/NIC objects still hold the previous cell's wiring and must be
  /// reinit()-ed before use (Network does this). Pair with return_net().
  NetStorage take_net();
  void return_net(NetStorage&& storage);

  /// Move a parked MPI job bundle out (FIFO: jobs are constructed and
  /// destroyed in the same order each cell, so job k of the next cell gets
  /// job k's carried storage). Returns an empty bundle when none is parked.
  /// The maps come back cleared; the RankCtx objects still hold the previous
  /// cell's wiring and must be reinit()-ed before use (Job does this). Pair
  /// with return_job_storage().
  mpi::JobStorage take_job_storage();
  void return_job_storage(mpi::JobStorage&& storage);

  /// Same lifecycle for MpiSystem's message-routing map.
  mpi::SystemStorage take_system_storage();
  void return_system_storage(mpi::SystemStorage&& storage);

  /// Reuse bookkeeping hooks for Network's and Job's create-or-recycle loops.
  void count_router(bool reused) { ++(reused ? stats_.router_reuses : stats_.router_builds); }
  void count_nic(bool reused) { ++(reused ? stats_.nic_reuses : stats_.nic_builds); }
  void count_rank(bool reused) { ++(reused ? stats_.rank_reuses : stats_.rank_builds); }

  /// Release every byte of carried storage (engine event heap, packet slabs,
  /// router/NIC buffers, parked MPI bundles, coroutine-frame freelists) and
  /// return the arena to its freshly-constructed empty state; stats() and
  /// the thread binding survive. run_plan() calls this before retrying a
  /// cell that failed with std::bad_alloc, so the retry starts from the
  /// smallest footprint the process can offer. No-op while a Study holds the
  /// arena (in_use()).
  void shed();

  /// Coroutine-frame freelist fed from this arena: ScopedArenaBinding binds
  /// it to the worker thread alongside the arena, so mpi::Task frames share
  /// the carried-storage lifecycle (see mpi/frame_pool.hpp).
  mpi::FramePool& frame_pool() { return frame_pool_; }
  const mpi::FramePool& frame_pool() const { return frame_pool_; }

  const ArenaStats& stats() const { return stats_; }

  /// The arena bound to the calling thread (nullptr when none is bound or
  /// arena reuse is globally disabled). ParallelRunner binds one per worker;
  /// Study picks it up automatically.
  static SimArena* current();

 private:
  const void* owner_{nullptr};
  Engine engine_;
  std::deque<Engine> extra_engines_;  ///< parked secondary-domain engines
  NetStorage net_;
  std::deque<mpi::JobStorage> job_storage_;  ///< parked bundles, FIFO order
  mpi::SystemStorage system_storage_;
  mpi::FramePool frame_pool_;
  ArenaStats stats_;
};

/// RAII binding of an arena to the calling thread (see SimArena::current()).
/// Also binds the arena's coroutine FramePool. Restores the previous
/// bindings on destruction, so bindings nest.
class ScopedArenaBinding {
 public:
  explicit ScopedArenaBinding(SimArena* arena);
  ~ScopedArenaBinding();
  ScopedArenaBinding(const ScopedArenaBinding&) = delete;
  ScopedArenaBinding& operator=(const ScopedArenaBinding&) = delete;

 private:
  SimArena* previous_;
  mpi::ScopedFramePoolBinding frame_binding_;
};

/// Global escape hatch: false disables every arena reuse path (Studies build
/// from scratch as before PR 3). Defaults to true unless the DFSIM_NO_ARENA
/// environment variable is set to anything but "0". The `--no-arena` flag on
/// dflysim and the benches calls set_arena_enabled(false).
bool arena_enabled();
void set_arena_enabled(bool enabled);

}  // namespace dfly

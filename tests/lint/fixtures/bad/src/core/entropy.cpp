#include <chrono>
#include <cstdlib>
#include <random>

namespace fixture {

int ambient() {
  std::random_device rd;                                     // det-rand
  const auto wall = std::chrono::system_clock::now();        // det-clock
  (void)wall;
  return std::rand() + static_cast<int>(rd());               // det-rand
}

}  // namespace fixture

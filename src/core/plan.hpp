#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/config_file.hpp"
#include "core/pairwise.hpp"
#include "core/study.hpp"

/// Declarative experiment campaigns.
///
/// Every result in the paper — and in the companion Dragonfly+ interference
/// and application-aware-routing studies — is "a set of Studies over axes":
/// applications x routings x placements x seeds (x topology/QoS/fault
/// variants). ExperimentPlan is the one description of such a campaign: a
/// base StudyConfig, the axes to sweep, and a job-mix kind. It expands
/// deterministically into an ordered cell list and runs through ONE entry
/// point, run_plan(), on the ParallelRunner (per-worker SimArena reuse and
/// cross-cell SystemBlueprint sharing intact), streaming each finished cell
/// to a PlanSink in cell order — so output bytes are identical for any
/// worker count.
///
/// The legacy driver surfaces — SeedSweep::run, run_pairwise_cells,
/// run_mixed_suites — are retained as thin shims over this core; new
/// scenarios should build an ExperimentPlan (programmatically, or from a
/// `plan.*` config file via plan_from_config / `dflysim --plan=FILE`).
namespace dfly {

/// How a plan populates each cell's job mix.
enum class PlanMode {
  kSingle,    ///< every cell runs the explicit `jobs` list (paper Figs 5-9)
  kPairwise,  ///< target x background half-machine matrix (paper Fig 4, §V)
  kMixed,     ///< Table II mix, plus per-app solo baselines (paper Fig 10)
  kCustom,    ///< programmatic: `custom` produces each cell's Report
};

const char* to_string(PlanMode mode);
/// Accepts "single", "pairwise", "mixed" (kCustom is programmatic-only).
PlanMode plan_mode_from_string(const std::string& name);

/// One application of an explicit job list. nodes == 0 fills the machine.
struct PlanJob {
  std::string app;
  int nodes{0};

  bool operator==(const PlanJob&) const = default;
};

/// A named overlay of config keys applied onto the base config — the
/// declarative form of "the same campaign, but with QoS classes on / a
/// degraded global link / a bigger machine". Any apply_config key works.
struct PlanVariant {
  std::string label;
  ConfigFile overrides;
};

/// What one expanded cell runs. kMixedSolo is the Fig 10 "alone" baseline:
/// the full Table II allocation sequence with every job except `target`
/// replaced by an idle placeholder.
enum class PlanCellKind { kSingle, kPairwise, kMixed, kMixedSolo, kCustom };

const char* to_string(PlanCellKind kind);

/// One fully-resolved simulation cell of a campaign.
struct PlanCell {
  std::size_t index{0};  ///< position in expansion (and emission) order
  PlanCellKind kind{PlanCellKind::kSingle};
  StudyConfig config{};  ///< base + variant overlay + axis values
  std::string variant;   ///< variant label, "" when no variant axis
  std::string target;      ///< pairwise target / mixed-solo app, else ""
  std::string background;  ///< pairwise background; "None" = standalone
  std::vector<PlanJob> jobs;  ///< kSingle job list, else empty
};

struct ExperimentPlan;

/// Streaming consumer of finished cells. run_plan() calls begin() once with
/// the full expansion, then cell_done() exactly once per cell in cell-index
/// order — cell i is delivered as soon as it *and every cell before it* has
/// finished, so a file sink flushes incrementally while workers are still
/// running later cells — then end() once. Calls are serialised by run_plan
/// (sinks need no locking of their own).
class PlanSink {
 public:
  virtual ~PlanSink() = default;
  virtual void begin(const ExperimentPlan& plan, const std::vector<PlanCell>& cells);
  virtual void cell_done(const PlanCell& cell, const Report& report) = 0;
  virtual void end();
};

/// Declarative description of a campaign. Expansion order is the fixed
/// nesting
///     variant > routing > placement > scale > seed > job-mix cell
/// (job-mix cells: pairwise = target-major over backgrounds, mixed = the mix
/// then each solo in table2_mix order, single/custom = one cell). An empty
/// axis means "the base config's value is the single point". When
/// `config_list` is set it replaces the whole axis product, cell order
/// following the list.
struct ExperimentPlan {
  std::string name{"campaign"};
  StudyConfig base{};
  PlanMode mode{PlanMode::kSingle};

  // --- axes ---------------------------------------------------------------
  std::vector<PlanVariant> variants;
  std::vector<std::string> routings;
  std::vector<PlacementPolicy> placements;
  std::vector<int> scales;
  std::vector<std::uint64_t> seeds;
  /// Explicit per-cell configs replacing the axis product (legacy
  /// run_mixed_suites shim; campaigns over hand-built config sets).
  std::vector<StudyConfig> config_list;

  // --- job mix ------------------------------------------------------------
  std::vector<PlanJob> jobs;             ///< kSingle
  std::vector<std::string> targets;      ///< kPairwise
  std::vector<std::string> backgrounds;  ///< kPairwise; "None" = standalone
  /// kPairwise: explicit (target, background, routing-override) list
  /// replacing the targets x backgrounds product (legacy shim surface).
  std::vector<PairwiseCell> pairwise_list;
  bool mixed_solos{true};  ///< kMixed: append per-app solo baselines
  /// kCustom: produces each cell's Report (runs on a worker thread; must
  /// only touch state owned by its cell).
  std::function<Report(const PlanCell&)> custom;

  /// Deterministic ordered expansion; calls validate() first. Cell order and
  /// content depend only on the plan — never on jobs or timing.
  std::vector<PlanCell> expand() const;

  /// Structural checks (unknown app/routing names, empty job mix, missing
  /// custom runner, non-positive scales); throws std::invalid_argument.
  void validate() const;
};

/// Collects reports in cell order (and keeps the expansion for callers that
/// index results by axis position).
class CollectSink final : public PlanSink {
 public:
  void begin(const ExperimentPlan& plan, const std::vector<PlanCell>& cells) override;
  void cell_done(const PlanCell& cell, const Report& report) override;

  const std::vector<PlanCell>& cells() const { return cells_; }
  const std::vector<Report>& reports() const { return reports_; }
  std::vector<Report>&& take_reports() { return std::move(reports_); }

 private:
  std::vector<PlanCell> cells_;
  std::vector<Report> reports_;
};

/// JSON Lines: one self-contained object per cell —
///   {"cell":N,"kind":...,"variant":...,"routing":...,"placement":...,
///    "seed":N,"scale":N,"target":...,"background":...,"jobs":[...],
///    "report":{<report_to_json document>}}
/// — written and flushed as each cell completes, so a long campaign's
/// output is tail-able and survives interruption up to the last whole line.
class JsonlSink final : public PlanSink {
 public:
  explicit JsonlSink(std::ostream& out);
  /// Opens `path` for writing (throws std::runtime_error on failure).
  explicit JsonlSink(const std::string& path);

  void cell_done(const PlanCell& cell, const Report& report) override;

 private:
  std::ofstream owned_;
  std::ostream* out_;
};

/// CSV: a header plus one row per (cell, application) — the flat table a
/// plotting notebook ingests directly. Flushed per cell like JsonlSink.
class CsvSink final : public PlanSink {
 public:
  explicit CsvSink(std::ostream& out);
  explicit CsvSink(const std::string& path);

  void begin(const ExperimentPlan& plan, const std::vector<PlanCell>& cells) override;
  void cell_done(const PlanCell& cell, const Report& report) override;

 private:
  std::ofstream owned_;
  std::ostream* out_;
};

/// Fans one campaign stream out to several sinks (console + JSONL + CSV is
/// the common CLI combination). Does not own the sinks.
class TeeSink final : public PlanSink {
 public:
  TeeSink() = default;
  explicit TeeSink(std::vector<PlanSink*> sinks) : sinks_(std::move(sinks)) {}

  void add(PlanSink* sink) { sinks_.push_back(sink); }

  void begin(const ExperimentPlan& plan, const std::vector<PlanCell>& cells) override;
  void cell_done(const PlanCell& cell, const Report& report) override;
  void end() override;

 private:
  std::vector<PlanSink*> sinks_;
};

/// Outcome of a campaign run (drives the CLI exit status).
struct PlanOutcome {
  std::size_t cells{0};
  std::size_t completed{0};  ///< cells whose Report.completed is true
};

/// THE campaign entry point: expand the plan, shard the cells across `jobs`
/// ParallelRunner workers (> 0 = exact count, 0 = DFSIM_JOBS, else
/// sequential; per-worker arenas and the shared BlueprintCache apply as for
/// every other driver), and stream results to `sink` in cell order. The
/// first cell exception is rethrown after workers drain (end() is not
/// called then). Output is bit-identical for any worker count.
PlanOutcome run_plan(const ExperimentPlan& plan, PlanSink& sink, int jobs = 0);

/// Run one already-expanded cell on the calling thread (the per-cell work
/// run_plan schedules; exposed for tests and custom drivers).
Report run_plan_cell(const ExperimentPlan& plan, const PlanCell& cell);

/// Build a plan from a config file: every non-`plan.` key configures the
/// base StudyConfig via apply_config; `plan.*` keys describe the campaign —
///   plan.name        = fig4                     (default "campaign")
///   plan.mode        = single | pairwise | mixed  (default single)
///   plan.routings    = PAR,UGALg,Q-adp
///   plan.placements  = random,contiguous
///   plan.scales      = 1,8
///   plan.seeds       = 42..46,100              (ranges are inclusive)
///   plan.jobs        = FFT3D:528,Halo3D:0      (mode single; 0 = fill)
///   plan.targets     = FFT3D,LU                (mode pairwise)
///   plan.backgrounds = None,UR,Halo3D          (mode pairwise)
///   plan.solos       = true                    (mode mixed)
///   plan.variant.<label> = key=value; key=value  (repeatable; sorted by
///                          label; an empty value is the unmodified base)
/// Unknown plan keys throw std::invalid_argument naming the source line.
ExperimentPlan plan_from_config(const ConfigFile& file);

/// ConfigFile::load + plan_from_config.
ExperimentPlan load_plan(const std::string& path);

}  // namespace dfly

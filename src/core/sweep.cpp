#include "core/sweep.hpp"

#include <cmath>
#include <stdexcept>

#include "core/plan.hpp"

namespace dfly {

SweepStat SweepStat::of(const Accumulator& acc) {
  SweepStat s;
  s.n = static_cast<int>(acc.count());
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  if (s.n > 1) {
    s.ci95_half = 1.96 * s.stddev / std::sqrt(static_cast<double>(s.n));
  }
  return s;
}

const AppSweep& SweepSummary::app(const std::string& name) const {
  for (const AppSweep& entry : apps) {
    if (entry.app == name) return entry;
  }
  throw std::out_of_range("SweepSummary: no app named " + name);
}

SeedSweep::SeedSweep(std::vector<std::uint64_t> seeds) : seeds_(std::move(seeds)) {
  if (seeds_.empty()) throw std::invalid_argument("SeedSweep: need at least one seed");
}

SeedSweep::SeedSweep(std::uint64_t base_seed, int n) {
  if (n < 1) throw std::invalid_argument("SeedSweep: need at least one repetition");
  seeds_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) seeds_.push_back(base_seed + static_cast<std::uint64_t>(i));
}

SweepSummary SeedSweep::run(const std::function<Report(std::uint64_t)>& experiment,
                            int jobs) const {
  // Shim over the unified campaign core: a seed sweep is a plan with one
  // seeds axis and a custom cell runner. Scheduling, arena reuse and
  // blueprint sharing are exactly what every other driver gets, so the
  // summary is bit-identical to the pre-plan implementation.
  ExperimentPlan plan;
  plan.name = "seed_sweep";
  plan.mode = PlanMode::kCustom;
  plan.seeds = seeds_;
  plan.custom = [&experiment](const PlanCell& cell) { return experiment(cell.config.seed); };
  CollectSink sink;
  // Legacy fail-fast contract: callers of this shim predate cell isolation
  // and expect the first cell exception to propagate.
  run_plan(plan, sink, jobs).rethrow_any();
  return aggregate(sink.reports());
}

SweepSummary SeedSweep::aggregate(const std::vector<Report>& reports) {
  if (reports.empty()) throw std::invalid_argument("SeedSweep: no reports to aggregate");
  SweepSummary summary;
  summary.routing = reports.front().routing;
  summary.runs = static_cast<int>(reports.size());

  const std::size_t num_apps = reports.front().apps.size();
  for (const Report& report : reports) {
    if (report.apps.size() != num_apps) {
      throw std::invalid_argument("SeedSweep: app sets differ across repetitions");
    }
    if (report.completed) ++summary.completed_runs;
  }

  struct AppAcc {
    Accumulator comm, exec, lat_mean, lat_p99, nonmin;
  };
  std::vector<AppAcc> app_accs(num_apps);
  Accumulator makespan, sys_p99, throughput, local_stall, global_stall, imbalance;

  for (const Report& report : reports) {
    makespan.add(to_ms(report.makespan));
    sys_p99.add(report.sys_lat_p99_us);
    throughput.add(report.agg_throughput_gb_per_ms);
    local_stall.add(report.local_stall_ms);
    global_stall.add(report.global_stall_ms);
    imbalance.add(report.congestion_imbalance);
    for (std::size_t a = 0; a < num_apps; ++a) {
      const AppReport& app = report.apps[a];
      app_accs[a].comm.add(app.comm_mean_ms);
      app_accs[a].exec.add(app.exec_ms);
      app_accs[a].lat_mean.add(app.lat_mean_us);
      app_accs[a].lat_p99.add(app.lat_p99_us);
      app_accs[a].nonmin.add(app.nonminimal_fraction);
    }
  }

  summary.makespan_ms = SweepStat::of(makespan);
  summary.sys_lat_p99_us = SweepStat::of(sys_p99);
  summary.agg_throughput = SweepStat::of(throughput);
  summary.local_stall_ms = SweepStat::of(local_stall);
  summary.global_stall_ms = SweepStat::of(global_stall);
  summary.congestion_imbalance = SweepStat::of(imbalance);
  summary.apps.reserve(num_apps);
  for (std::size_t a = 0; a < num_apps; ++a) {
    AppSweep app;
    app.app = reports.front().apps[a].app;
    app.comm_ms = SweepStat::of(app_accs[a].comm);
    app.exec_ms = SweepStat::of(app_accs[a].exec);
    app.lat_mean_us = SweepStat::of(app_accs[a].lat_mean);
    app.lat_p99_us = SweepStat::of(app_accs[a].lat_p99);
    app.nonminimal_fraction = SweepStat::of(app_accs[a].nonmin);
    summary.apps.push_back(std::move(app));
  }
  return summary;
}

}  // namespace dfly

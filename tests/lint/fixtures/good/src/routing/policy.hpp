#pragma once

#include <cstdint>

namespace fixture {

class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;
};

struct Params {
  int knob{0};
};

// Members are const parameterisation or mutable scratch: nothing to register.
class CleanPolicy final : public RoutingAlgorithm {
 public:
  explicit CleanPolicy(Params params) : params_(params) {}

 private:
  const Params params_;
  mutable std::uint64_t scratch_{0};
};

// Not a routing policy: unregistered plain members are out of scope here.
class Bystander {
 private:
  int drift_{0};
};

}  // namespace fixture

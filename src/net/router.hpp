#pragma once

#include <cstdint>
#include <vector>

#include "core/ring_queue.hpp"

#include "net/buffer.hpp"
#include "net/config.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/routing_iface.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "stats/link_stats.hpp"
#include "topo/dragonfly.hpp"

namespace dfly {

class SystemBlueprint;

namespace router_ev {
inline constexpr std::uint32_t kArrive = 1;   ///< a = packet id, b = in_port | in_vc<<8
inline constexpr std::uint32_t kTryPort = 2;  ///< a = output port
inline constexpr std::uint32_t kCredit = 3;   ///< a = output port, b = vc
}  // namespace router_ev

/// Input-queued virtual-channel router with credit-based flow control.
///
/// Microarchitecture (one event-driven pipeline per output port):
///  - packets are routed on arrival (route computation at the input),
///  - the head of each (input port, VC) FIFO posts a request to its output
///    port's FIFO arbiter,
///  - an output transmits when it is idle and the requester's VC has
///    downstream credits; blocked requests park in a per-VC stall list that
///    is re-activated by credit returns (no head-of-line scan loops),
///  - credits return to the upstream hop one reverse-wire latency after the
///    packet leaves the input buffer.
///
/// Time a loaded output spends blocked on credits while demand exists is
/// accumulated as that link's *stall time* (the paper's Fig 11 metric).
class Router final : public Component {
 public:
  /// Topology, NetConfig and the link-id scheme all come from the immutable
  /// `blueprint`, which the owning Network keeps alive; the remaining
  /// arguments are the router's mutable per-cell dependencies.
  Router(Engine& engine, const SystemBlueprint& blueprint, int id,
         PacketPool& pool, LinkStats& stats, std::uint64_t seed);

  /// Re-point and re-zero every piece of per-cell state so a router object
  /// recycled from a per-worker arena (core/arena.hpp) behaves exactly like a
  /// freshly-constructed one while keeping its buffer storage. The
  /// constructor funnels through this, so the fresh and reuse paths cannot
  /// drift apart. Callers must re-connect() wiring and set_routing() after.
  void reinit(Engine& engine, const SystemBlueprint& blueprint, int id,
              PacketPool& pool, LinkStats& stats, std::uint64_t seed);

  /// Wire output `port` to a peer component (router or NIC). `peer_port` is
  /// the input port index on the receiving side (ignored for NICs).
  void connect(int port, Component& peer, int peer_port, bool peer_is_router);

  void set_routing(RoutingAlgorithm& routing) { routing_ = &routing; }

  void handle(Engine& engine, const Event& event) override;

  // --- introspection for routing policies and tests ------------------------
  int id() const { return id_; }
  int group() const { return topo_->group_of_router(id_); }
  const Dragonfly& topo() const { return *topo_; }
  const NetConfig& cfg() const { return *cfg_; }
  Rng& rng() { return rng_; }
  Engine& engine() { return *engine_; }

  /// Congestion estimate used by adaptive policies: packets queued in this
  /// router for `port` plus downstream buffer slots already claimed.
  int occupancy(int port) const {
    return pending_[static_cast<std::size_t>(port)] + credits_used_[static_cast<std::size_t>(port)];
  }
  int credits(int port, int vc) const {
    return credits_[static_cast<std::size_t>(port) * cfg_->num_vcs + static_cast<std::size_t>(vc)];
  }
  int buffered_packets() const { return buffers_.total_occupancy(); }

  /// Degrade the wire behind output `port`: packets serialise `slowdown`
  /// times slower and the propagation delay grows by `extra_latency`.
  /// Adaptive policies are not told explicitly — they observe the fault the
  /// way real hardware does, through queue growth and delivery-time feedback.
  void degrade_port(int port, int slowdown, SimTime extra_latency);
  int port_slowdown(int port) const { return out_[static_cast<std::size_t>(port)].slowdown; }
  SimTime port_extra_latency(int port) const {
    return out_[static_cast<std::size_t>(port)].extra_latency;
  }

 private:
  struct Request {
    std::int16_t in_port;
    std::int16_t in_vc;
  };
  struct OutPort {
    Component* peer{nullptr};
    std::int16_t peer_port{-1};
    bool peer_is_router{false};
    SimTime latency{0};
    int slowdown{1};          ///< fault injection: serialisation multiplier
    SimTime extra_latency{0};  ///< fault injection: added propagation delay
    SimTime busy_until{0};
    bool try_pending{false};
    SimTime stall_start{-1};
    // RingQueues, not deques: these FIFOs oscillate around slab boundaries
    // under load, and their storage must survive clear() for arena reuse.
    RingQueue<Request> requests;
    std::vector<RingQueue<Request>> stalled;  ///< per VC
    // QoS (cfg.qos.num_classes > 1): per-class request queues arbitrated by
    // deficit-weighted round-robin; `requests` is unused in that mode.
    std::vector<RingQueue<Request>> class_requests;
    std::vector<std::int64_t> deficit;  ///< DWRR deficit per class, in bytes
  };

  void on_arrive(Engine& engine, std::uint32_t packet_id, int in_port, int in_vc);
  void on_try_port(Engine& engine, int port);
  void try_port_fifo(Engine& engine, int port);
  void try_port_dwrr(Engine& engine, int port);
  void on_credit(Engine& engine, int port, int vc);
  /// Traffic class of the packet at the head of a request's input queue.
  int head_class(const Request& request) const;
  /// True when any request queue of `port` is non-empty (mode-aware).
  bool has_requests(const OutPort& o) const;
  void schedule_try(Engine& engine, int port, SimTime when);
  void post_request(Engine& engine, int in_port, int in_vc);
  bool transmit(Engine& engine, int port, const Request& request);

  int& credits_ref(int port, int vc) {
    return credits_[static_cast<std::size_t>(port) * cfg_->num_vcs + static_cast<std::size_t>(vc)];
  }

  Engine* engine_;
  const Dragonfly* topo_;
  const NetConfig* cfg_;
  int id_;
  PacketPool* pool_;
  LinkStats* stats_;
  const LinkMap* links_;
  RoutingAlgorithm* routing_{nullptr};
  Rng rng_;

  InputBuffers buffers_;
  std::vector<OutPort> out_;
  std::vector<int> credits_;       ///< [port][vc] downstream slots free
  std::vector<int> credits_used_;  ///< [port] downstream slots in flight
  std::vector<int> pending_;       ///< [port] packets here routed to port
  struct InWire {
    Component* peer{nullptr};
    std::int16_t peer_port{-1};
    SimTime latency{0};
    bool peer_is_router{false};
  };
  std::vector<InWire> in_;  ///< reverse wiring for credit returns
  friend class Network;
};

}  // namespace dfly

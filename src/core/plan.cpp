#include "core/plan.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/arena.hpp"
#include "core/blueprint.hpp"
#include "core/json_report.hpp"
#include "core/mixed.hpp"
#include "routing/factory.hpp"
#include "workloads/factory.hpp"

namespace dfly {

namespace {

bool contains(const std::vector<std::string>& names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

void check_app(const std::string& context, const std::string& name) {
  if (!contains(workloads::app_names(), name)) {
    throw std::invalid_argument("ExperimentPlan: " + context + " names unknown application '" +
                                name + "'");
  }
}

void check_routing(const std::string& context, const std::string& name) {
  if (!contains(routing::all_routings(), name)) {
    throw std::invalid_argument("ExperimentPlan: " + context + " names unknown routing '" +
                                name + "'");
  }
}

/// CSV fields are plain identifiers/numbers today; quote defensively anyway
/// so a future label with a comma cannot corrupt the table.
std::string csv_field(const std::string& raw) {
  if (raw.find_first_of(",\"\n") == std::string::npos) return raw;
  std::string out = "\"";
  for (const char c : raw) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csv_double(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return buffer;
}

}  // namespace

const char* to_string(PlanMode mode) {
  switch (mode) {
    case PlanMode::kSingle: return "single";
    case PlanMode::kPairwise: return "pairwise";
    case PlanMode::kMixed: return "mixed";
    case PlanMode::kCustom: return "custom";
  }
  return "?";
}

PlanMode plan_mode_from_string(const std::string& name) {
  if (name == "single") return PlanMode::kSingle;
  if (name == "pairwise") return PlanMode::kPairwise;
  if (name == "mixed") return PlanMode::kMixed;
  throw std::invalid_argument("unknown plan mode: '" + name +
                              "' (expected single, pairwise or mixed)");
}

const char* to_string(PlanCellKind kind) {
  switch (kind) {
    case PlanCellKind::kSingle: return "single";
    case PlanCellKind::kPairwise: return "pairwise";
    case PlanCellKind::kMixed: return "mixed";
    case PlanCellKind::kMixedSolo: return "mixed_solo";
    case PlanCellKind::kCustom: return "custom";
  }
  return "?";
}

void PlanSink::begin(const ExperimentPlan&, const std::vector<PlanCell>&) {}
void PlanSink::cell_failed(const PlanCell&, const CellFailure&) {}
void PlanSink::end() {}

// --- cell identity -----------------------------------------------------------

namespace {

/// Field-by-field FNV-1a (never over raw struct bytes: no padding, stable
/// across platforms and processes).
class CellHasher {
 public:
  void mix_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      step(static_cast<unsigned char>(v & 0xff));
      v >>= 8;
    }
  }
  void mix_double(double v) {
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    mix_u64(bits);
  }
  void mix_string(const std::string& s) {
    mix_u64(s.size());
    for (const char c : s) step(static_cast<unsigned char>(c));
  }
  std::uint64_t value() const { return h_; }

 private:
  void step(unsigned char byte) {
    h_ ^= byte;
    h_ *= 1099511628211ull;
  }
  std::uint64_t h_{14695981039346656037ull};
};

}  // namespace

std::uint64_t plan_cell_hash(const PlanCell& cell) {
  CellHasher h;
  // BlueprintKey covers every config field that shapes the system (topology,
  // net, routing parameterisation, placement, faults); the fields it
  // deliberately excludes are mixed in explicitly below.
  h.mix_u64(static_cast<std::uint64_t>(BlueprintKey::of(cell.config).hash()));
  h.mix_u64(cell.config.seed);
  h.mix_u64(static_cast<std::uint64_t>(cell.config.scale));
  h.mix_u64(static_cast<std::uint64_t>(cell.config.time_limit));
  h.mix_double(cell.config.wall_limit_s);
  h.mix_u64(static_cast<std::uint64_t>(cell.kind));
  h.mix_string(cell.variant);
  h.mix_string(cell.target);
  h.mix_string(cell.background);
  h.mix_u64(cell.jobs.size());
  for (const PlanJob& job : cell.jobs) {
    h.mix_string(job.app);
    h.mix_u64(static_cast<std::uint64_t>(job.nodes));
  }
  h.mix_u64(cell.index);
  return h.value();
}

// --- expansion ---------------------------------------------------------------

void ExperimentPlan::validate() const {
  for (const int scale : scales) {
    if (scale < 1) {
      throw std::invalid_argument("ExperimentPlan: scales must be >= 1, got " +
                                  std::to_string(scale));
    }
  }
  if (cell_timeout_s < 0) {
    throw std::invalid_argument("ExperimentPlan: cell_timeout_s must be >= 0");
  }
  if (cell_retries < 0) {
    throw std::invalid_argument("ExperimentPlan: cell_retries must be >= 0");
  }
  for (const std::string& name : routings) check_routing("routings axis", name);
  switch (mode) {
    case PlanMode::kSingle:
      if (jobs.empty()) {
        throw std::invalid_argument("ExperimentPlan: mode 'single' needs a non-empty job list "
                                    "(plan.jobs = APP:NODES,...)");
      }
      for (const PlanJob& job : jobs) {
        check_app("job list", job.app);
        if (job.nodes < 0) {
          throw std::invalid_argument("ExperimentPlan: job '" + job.app +
                                      "' has negative node count");
        }
      }
      break;
    case PlanMode::kPairwise:
      if (pairwise_list.empty() && (targets.empty() || backgrounds.empty())) {
        throw std::invalid_argument("ExperimentPlan: mode 'pairwise' needs plan.targets and "
                                    "plan.backgrounds (or an explicit pairwise_list)");
      }
      for (const std::string& name : targets) check_app("targets axis", name);
      for (const std::string& name : backgrounds) {
        if (name != "None") check_app("backgrounds axis", name);
      }
      for (const PairwiseCell& cell : pairwise_list) {
        check_app("pairwise_list", cell.target);
        if (!cell.background.empty() && cell.background != "None") {
          check_app("pairwise_list", cell.background);
        }
        if (!cell.routing.empty()) check_routing("pairwise_list", cell.routing);
      }
      break;
    case PlanMode::kMixed:
      break;
    case PlanMode::kCustom:
      if (!custom) {
        throw std::invalid_argument("ExperimentPlan: mode 'custom' needs a custom runner");
      }
      break;
  }
}

std::vector<PlanCell> ExperimentPlan::expand() const {
  validate();
  std::vector<PlanCell> cells;

  const auto add_mix_cells = [&](const StudyConfig& config, const std::string& variant_label) {
    const auto push = [&](PlanCellKind kind, StudyConfig cell_config) {
      PlanCell cell;
      cell.kind = kind;
      cell.config = std::move(cell_config);
      cell.variant = variant_label;
      return cells.insert(cells.end(), std::move(cell));
    };
    switch (mode) {
      case PlanMode::kSingle: {
        const auto it = push(PlanCellKind::kSingle, config);
        it->jobs = jobs;
        break;
      }
      case PlanMode::kCustom:
        push(PlanCellKind::kCustom, config);
        break;
      case PlanMode::kPairwise:
        if (!pairwise_list.empty()) {
          for (const PairwiseCell& pair : pairwise_list) {
            StudyConfig cell_config = config;
            if (!pair.routing.empty()) cell_config.routing = pair.routing;
            const auto it = push(PlanCellKind::kPairwise, std::move(cell_config));
            it->target = pair.target;
            it->background = pair.background.empty() ? "None" : pair.background;
          }
        } else {
          for (const std::string& target : targets) {
            for (const std::string& background : backgrounds) {
              const auto it = push(PlanCellKind::kPairwise, config);
              it->target = target;
              it->background = background;
            }
          }
        }
        break;
      case PlanMode::kMixed:
        push(PlanCellKind::kMixed, config);
        if (mixed_solos) {
          for (const MixedJobSpec& spec : table2_mix()) {
            const auto it = push(PlanCellKind::kMixedSolo, config);
            it->target = spec.app;
          }
        }
        break;
    }
  };

  if (!config_list.empty()) {
    for (const StudyConfig& config : config_list) add_mix_cells(config, "");
  } else {
    // Fixed nesting: variant > routing > placement > scale > seed. Axes are
    // applied after the variant overlay so an explicit axis always wins.
    const std::vector<PlanVariant> no_variant{PlanVariant{}};
    for (const PlanVariant& variant : variants.empty() ? no_variant : variants) {
      const StudyConfig varied = variant.overrides.values().empty()
                                     ? base
                                     : apply_config(base, variant.overrides);
      for (std::size_t r = 0; r < std::max<std::size_t>(routings.size(), 1); ++r) {
        for (std::size_t p = 0; p < std::max<std::size_t>(placements.size(), 1); ++p) {
          for (std::size_t sc = 0; sc < std::max<std::size_t>(scales.size(), 1); ++sc) {
            for (std::size_t sd = 0; sd < std::max<std::size_t>(seeds.size(), 1); ++sd) {
              StudyConfig config = varied;
              if (!routings.empty()) config.routing = routings[r];
              if (!placements.empty()) config.placement = placements[p];
              if (!scales.empty()) config.scale = scales[sc];
              if (!seeds.empty()) config.seed = seeds[sd];
              add_mix_cells(config, variant.label);
            }
          }
        }
      }
    }
  }

  for (std::size_t i = 0; i < cells.size(); ++i) cells[i].index = i;
  return cells;
}

// --- execution ---------------------------------------------------------------

Report run_plan_cell(const ExperimentPlan& plan, const PlanCell& cell) {
  switch (cell.kind) {
    case PlanCellKind::kSingle: {
      Study study(cell.config);
      for (const PlanJob& job : cell.jobs) study.add_app(job.app, job.nodes);
      return study.run();
    }
    case PlanCellKind::kPairwise:
      return run_pairwise(cell.config, cell.target, cell.background).full;
    case PlanCellKind::kMixed:
      return run_mixed(cell.config);
    case PlanCellKind::kMixedSolo:
      return run_mixed_solo(cell.config, cell.target);
    case PlanCellKind::kCustom:
      return plan.custom(cell);
  }
  throw std::logic_error("run_plan_cell: unhandled cell kind");
}

PlanShard parse_shard(const std::string& text) {
  const auto bad = [&]() -> PlanShard {
    throw std::invalid_argument("shard wants K/N with 1 <= K <= N (e.g. 2/4), got '" + text +
                                "'");
  };
  const auto parse_number = [&](const std::string& part) -> std::uint64_t {
    if (part.empty() || part.size() > 9) bad();
    std::uint64_t value = 0;
    for (const char c : part) {
      if (c < '0' || c > '9') bad();
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return value;
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) return bad();
  const std::uint64_t k = parse_number(text.substr(0, slash));
  const std::uint64_t n = parse_number(text.substr(slash + 1));
  if (k < 1 || n < 1 || k > n) bad();
  return PlanShard{static_cast<std::size_t>(k - 1), static_cast<std::size_t>(n)};
}

void PlanOutcome::rethrow_any() const {
  if (!failures.empty()) {
    const CellFailure& failure = failures.front();
    if (failure.error) std::rethrow_exception(failure.error);
    throw std::runtime_error("plan cell " + std::to_string(failure.index) +
                             " failed: " + failure.message);
  }
  if (worker_errors.any()) {
    throw std::runtime_error("campaign infrastructure failure: " + worker_errors.summary());
  }
}

namespace {

/// One cell's execution result, waiting in its emission slot.
struct CellResult {
  Report report;
  CellFailure failure;
  bool ok{false};
};

/// Run one cell with full fault isolation: never throws. Timeouts are final;
/// transient failures (bad_alloc / TransientCellError) are retried after
/// shedding the worker's arena and backing off.
CellResult run_cell_isolated(const ExperimentPlan& plan, const PlanCell& cell) {
  CellResult result;
  result.failure.index = cell.index;
  const int max_attempts = 1 + plan.cell_retries;
  for (int attempt = 1;; ++attempt) {
    result.failure.attempts = attempt;
    bool transient = false;
    try {
      if (plan.cell_timeout_s > 0 && cell.config.wall_limit_s <= 0) {
        PlanCell timed = cell;
        timed.config.wall_limit_s = plan.cell_timeout_s;
        result.report = run_plan_cell(plan, timed);
      } else {
        result.report = run_plan_cell(plan, cell);
      }
      result.ok = true;
      return result;
    } catch (const WallDeadlineExceeded& error) {
      result.failure.message = error.what();
      result.failure.timeout = true;
      result.failure.error = std::current_exception();
      return result;  // a timed-out cell would time out again: no retry
    } catch (const std::bad_alloc& error) {
      transient = true;
      result.failure.message = error.what();
      result.failure.error = std::current_exception();
    } catch (const TransientCellError& error) {
      transient = true;
      result.failure.message = error.what();
      result.failure.error = std::current_exception();
    } catch (const std::exception& error) {
      result.failure.message = error.what();
      result.failure.error = std::current_exception();
    } catch (...) {
      result.failure.message = "unknown exception";
      result.failure.error = std::current_exception();
    }
    if (!transient || attempt >= max_attempts) return result;
    // Transient retry: release every byte this worker is holding (the most
    // likely cure for bad_alloc), then back off briefly so a machine-wide
    // memory spike can pass. 10ms, 20ms, 40ms, ... capped at 640ms.
    if (SimArena* arena = SimArena::current()) arena->shed();
    const int shift = attempt - 1 < 6 ? attempt - 1 : 6;
    std::this_thread::sleep_for(std::chrono::milliseconds(10 << shift));
  }
}

}  // namespace

PlanOutcome run_plan(const ExperimentPlan& plan, PlanSink& sink,
                     const RunPlanOptions& options) {
  if (options.shard.count < 1 || options.shard.index >= options.shard.count) {
    throw std::invalid_argument("run_plan: shard index " + std::to_string(options.shard.index) +
                                " out of range for " + std::to_string(options.shard.count) +
                                " shards");
  }
  std::vector<PlanCell> cells = plan.expand();
  if (options.cell_threads > 0) {
    // Byte-neutral (the parallel engine replays the sequential event order
    // exactly) and excluded from plan_cell_hash, so resume journals written
    // at one thread count validate at any other.
    for (PlanCell& cell : cells) {
      if (cell.config.cell_threads == 0) cell.config.cell_threads = options.cell_threads;
    }
  }

  PlanOutcome outcome;
  std::vector<char> done(cells.size(), 0);

  // Replay the previous run's journal: each record is validated against the
  // re-expanded plan, then its cell is marked done and its outcome counted
  // as if this run had produced it — so exit status is stable across any
  // number of interrupt/resume cycles.
  if (options.resume != nullptr) {
    for (const JournalRecord& record : *options.resume) {
      if (record.cell >= cells.size()) {
        throw std::runtime_error("run_plan: journal records cell " +
                                 std::to_string(record.cell) + " but the plan expands to " +
                                 std::to_string(cells.size()) +
                                 " cells — the plan changed; remove the journal to start over");
      }
      const PlanCell& cell = cells[record.cell];
      if (plan_cell_hash(cell) != record.hash) {
        throw std::runtime_error("run_plan: journal hash mismatch for cell " +
                                 std::to_string(record.cell) +
                                 " — the plan changed under the journal; remove the journal "
                                 "(and the output) to start over");
      }
      if (!options.shard.selects(record.cell) || done[record.cell]) continue;
      done[record.cell] = 1;
      ++outcome.resumed;
      if (record.ok) {
        if (record.completed) ++outcome.completed;
      } else {
        CellFailure failure;
        failure.index = record.cell;
        failure.message = record.error;
        failure.attempts = record.attempts;
        failure.timeout = record.timeout;
        outcome.failures.push_back(std::move(failure));
      }
    }
  }

  std::vector<std::size_t> work;  // cell indices this invocation simulates
  work.reserve(cells.size());
  for (const PlanCell& cell : cells) {
    if (!options.shard.selects(cell.index)) continue;
    ++outcome.cells;
    if (!done[cell.index]) work.push_back(cell.index);
  }

  sink.begin(plan, cells);

  // Workers finish out of order; results wait in their slot until every
  // earlier cell has been emitted, then flush to the sink in index order (a
  // flushed slot is released immediately, so memory holds only the
  // out-of-order window, not the whole campaign).
  std::vector<CellResult> slots(work.size());
  std::vector<char> ready(work.size(), 0);
  std::size_t next_emit = 0;
  std::mutex emit_mutex;

  // Serialised by emit_mutex. May throw only AFTER the slot is consumed
  // (next_emit already advanced): a journal-append failure then surfaces as
  // a worker error without any cell being emitted twice.
  const auto emit = [&](std::size_t k) {
    const PlanCell& cell = cells[work[k]];
    CellResult result = std::move(slots[k]);
    slots[k] = CellResult{};
    if (result.ok) {
      try {
        sink.cell_done(cell, result.report);
      } catch (const std::exception& error) {
        result.ok = false;
        result.failure.sink_error = true;
        result.failure.message = error.what();
        result.failure.error = std::current_exception();
      } catch (...) {
        result.ok = false;
        result.failure.sink_error = true;
        result.failure.message = "unknown exception";
        result.failure.error = std::current_exception();
      }
    }
    if (result.ok) {
      if (result.report.completed) ++outcome.completed;
    } else {
      outcome.failures.push_back(result.failure);
      try {
        sink.cell_failed(cell, result.failure);
      } catch (...) {
        // cell_failed is advisory; the failure is already recorded.
      }
    }
    ++outcome.executed;
    if (options.journal != nullptr) {
      JournalRecord record;
      record.cell = cell.index;
      record.ok = result.ok;
      record.completed = result.ok && result.report.completed;
      record.hash = plan_cell_hash(cell);
      record.attempts = result.failure.attempts;
      record.timeout = result.failure.timeout;
      record.offset = options.output_offset ? options.output_offset() : 0;
      record.error = result.ok ? std::string() : result.failure.message;
      // Ordering contract: the output line is already flushed, so this
      // fsync'd record — carrying the post-line offset — commits the cell.
      // A crash in between leaves an orphan output line that --resume cuts
      // by truncating to the last journaled offset.
      options.journal->append(record);
    }
  };

  const auto run_one = [&](std::size_t k) {
    CellResult result;
    if (options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed)) {
      // Cancelled before this cell started: record it without simulating.
      // In-flight cells finish normally, so a cancel never tears a cell.
      result.failure.index = cells[work[k]].index;
      result.failure.message = "campaign cancelled";
      result.failure.attempts = 0;
    } else {
      result = run_cell_isolated(plan, cells[work[k]]);
    }
    const std::lock_guard<std::mutex> lock(emit_mutex);
    slots[k] = std::move(result);
    ready[k] = 1;
    while (next_emit < work.size() && ready[next_emit]) emit(next_emit++);
  };
  if (options.queue != nullptr) {
    // Daemon mode: multiplex this campaign's cells onto the shared warm pool
    // (per-worker arenas and the cross-campaign BlueprintCache stay hot).
    options.queue->run_indexed(work.size(), run_one, &outcome.worker_errors);
  } else {
    ParallelRunner(options.jobs).run_indexed(work.size(), run_one, &outcome.worker_errors);
  }

  sink.end();

  // Resume-replayed and freshly-recorded failures interleave; present them
  // in cell order regardless of history.
  std::stable_sort(outcome.failures.begin(), outcome.failures.end(),
                   [](const CellFailure& a, const CellFailure& b) { return a.index < b.index; });
  return outcome;
}

PlanOutcome run_plan(const ExperimentPlan& plan, PlanSink& sink, int jobs) {
  RunPlanOptions options;
  options.jobs = jobs;
  return run_plan(plan, sink, options);
}

// --- sinks -------------------------------------------------------------------

void CollectSink::begin(const ExperimentPlan&, const std::vector<PlanCell>& cells) {
  cells_ = cells;
  reports_.assign(cells.size(), Report{});
  failures_.clear();
}

void CollectSink::cell_done(const PlanCell& cell, const Report& report) {
  reports_[cell.index] = report;
}

void CollectSink::cell_failed(const PlanCell&, const CellFailure& failure) {
  failures_.push_back(failure);
}

void TeeSink::begin(const ExperimentPlan& plan, const std::vector<PlanCell>& cells) {
  for (PlanSink* sink : sinks_) sink->begin(plan, cells);
}

void TeeSink::cell_done(const PlanCell& cell, const Report& report) {
  for (PlanSink* sink : sinks_) sink->cell_done(cell, report);
}

void TeeSink::cell_failed(const PlanCell& cell, const CellFailure& failure) {
  for (PlanSink* sink : sinks_) sink->cell_failed(cell, failure);
}

void TeeSink::end() {
  for (PlanSink* sink : sinks_) sink->end();
}

JsonlSink::JsonlSink(std::ostream& out) : out_(&out) {}

JsonlSink::JsonlSink(const std::string& path, bool append)
    : owned_(path, append ? std::ios::binary | std::ios::app
                          : std::ios::binary | std::ios::trunc),
      out_(&owned_),
      path_(path) {
  if (!owned_) throw std::runtime_error("JsonlSink: cannot open " + path);
  if (append) {
    // Resume continues after the (already truncated) existing content; the
    // journal offsets it writes must be absolute file sizes.
    std::ifstream probe(path, std::ios::binary | std::ios::ate);
    if (probe && probe.tellg() > 0) bytes_ = static_cast<std::uint64_t>(probe.tellg());
  }
}

std::string plan_cell_jsonl(const PlanCell& cell, const Report& report) {
  JsonWriter w;
  w.begin_object();
  w.key("cell").value(static_cast<std::uint64_t>(cell.index));
  w.key("kind").value(to_string(cell.kind));
  w.key("variant").value(cell.variant);
  w.key("routing").value(cell.config.routing);
  w.key("placement").value(to_string(cell.config.placement));
  w.key("seed").value(cell.config.seed);
  w.key("scale").value(cell.config.scale);
  w.key("target").value(cell.target);
  w.key("background").value(cell.background);
  w.key("jobs").begin_array();
  for (const PlanJob& job : cell.jobs) {
    w.begin_object();
    w.key("app").value(job.app);
    w.key("nodes").value(job.nodes);
    w.end_object();
  }
  w.end_array();
  w.key("report");
  write_report(w, report);
  w.end_object();
  return w.str();
}

void JsonlSink::cell_done(const PlanCell& cell, const Report& report) {
  const std::string line = plan_cell_jsonl(cell, report);
  *out_ << line << '\n' << std::flush;
  if (!out_->good()) {
    throw std::runtime_error("JsonlSink: write failed" +
                             (path_.empty() ? std::string() : " on " + path_));
  }
  bytes_ += line.size() + 1;
}

CsvSink::CsvSink(std::ostream& out) : out_(&out) {}

CsvSink::CsvSink(const std::string& path)
    : owned_(path + ".tmp", std::ios::binary | std::ios::trunc), out_(&owned_), path_(path) {
  if (!owned_) throw std::runtime_error("CsvSink: cannot open " + path + ".tmp");
}

void CsvSink::check_stream(const char* what) const {
  if (!out_->good()) {
    throw std::runtime_error(std::string("CsvSink: ") + what + " failed" +
                             (path_.empty() ? std::string() : " on " + path_ + ".tmp"));
  }
}

void CsvSink::begin(const ExperimentPlan&, const std::vector<PlanCell>&) {
  *out_ << "cell,kind,variant,routing,placement,seed,scale,target,background,app,nodes,"
           "comm_mean_ms,comm_std_ms,exec_ms,injection_rate_gbs,lat_mean_us,lat_p99_us,"
           "nonminimal_fraction,completed,makespan_ms,sys_lat_p99_us\n"
        << std::flush;
  check_stream("header write");
}

void CsvSink::cell_done(const PlanCell& cell, const Report& report) {
  const std::string prefix = std::to_string(cell.index) + ',' + to_string(cell.kind) + ',' +
                             csv_field(cell.variant) + ',' + csv_field(cell.config.routing) +
                             ',' + to_string(cell.config.placement) + ',' +
                             std::to_string(cell.config.seed) + ',' +
                             std::to_string(cell.config.scale) + ',' + csv_field(cell.target) +
                             ',' + csv_field(cell.background) + ',';
  const std::string suffix = std::string(report.completed ? "true" : "false") + ',' +
                             csv_double(to_ms(report.makespan)) + ',' +
                             csv_double(report.sys_lat_p99_us);
  for (const AppReport& app : report.apps) {
    *out_ << prefix << csv_field(app.app) << ',' << app.nodes << ','
          << csv_double(app.comm_mean_ms) << ',' << csv_double(app.comm_std_ms) << ','
          << csv_double(app.exec_ms) << ',' << csv_double(app.injection_rate_gbs) << ','
          << csv_double(app.lat_mean_us) << ',' << csv_double(app.lat_p99_us) << ','
          << csv_double(app.nonminimal_fraction) << ',' << suffix << '\n';
  }
  *out_ << std::flush;
  check_stream("write");
}

void CsvSink::end() {
  if (path_.empty()) return;  // ostream ctor: nothing to finalise
  owned_.flush();
  check_stream("flush");
  owned_.close();
  if (std::rename((path_ + ".tmp").c_str(), path_.c_str()) != 0) {
    throw std::runtime_error("CsvSink: cannot rename " + path_ + ".tmp to " + path_ + ": " +
                             std::strerror(errno));
  }
}

// --- shard reassembly --------------------------------------------------------

std::size_t merge_shard_jsonl(const std::vector<std::string>& inputs,
                              const std::string& out_path, std::ostream* warnings) {
  static const char kPrefix[] = "{\"cell\":";
  static const std::size_t kPrefixLen = sizeof(kPrefix) - 1;

  std::vector<std::pair<std::uint64_t, std::string>> lines;
  for (const std::string& input : inputs) {
    std::ifstream in(input, std::ios::binary);
    if (!in) throw std::runtime_error("merge_shard_jsonl: cannot read " + input);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (line.compare(0, kPrefixLen, kPrefix) != 0) {
        throw std::runtime_error("merge_shard_jsonl: " + input +
                                 ": line without a leading \"cell\" index");
      }
      std::size_t pos = kPrefixLen;
      std::uint64_t cell = 0;
      bool digits = false;
      while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
        cell = cell * 10 + static_cast<std::uint64_t>(line[pos] - '0');
        ++pos;
        digits = true;
      }
      if (!digits) {
        throw std::runtime_error("merge_shard_jsonl: " + input +
                                 ": malformed \"cell\" index");
      }
      lines.emplace_back(cell, std::move(line));
    }
  }

  std::stable_sort(lines.begin(), lines.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].first == lines[i - 1].first) {
      throw std::runtime_error("merge_shard_jsonl: cell " + std::to_string(lines[i].first) +
                               " appears in more than one input (overlapping shards?)");
    }
  }
  if (warnings != nullptr && !lines.empty()) {
    // Gaps are expected exactly where cells failed; surface them so a silent
    // partial merge cannot masquerade as a complete campaign.
    std::uint64_t expect = 0;
    for (const auto& [cell, line] : lines) {
      for (; expect < cell; ++expect) {
        *warnings << "merge-shards: no line for cell " << expect << " (failed or not run)\n";
      }
      expect = cell + 1;
    }
  }

  const std::string tmp = out_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("merge_shard_jsonl: cannot open " + tmp);
    for (const auto& [cell, line] : lines) out << line << '\n';
    out.flush();
    if (!out.good()) throw std::runtime_error("merge_shard_jsonl: write failed on " + tmp);
  }
  if (std::rename(tmp.c_str(), out_path.c_str()) != 0) {
    throw std::runtime_error("merge_shard_jsonl: cannot rename " + tmp + " to " + out_path +
                             ": " + std::strerror(errno));
  }
  return lines.size();
}

// --- config-file surface -----------------------------------------------------

namespace {

std::vector<PlanJob> parse_plan_jobs(const ConfigFile& file, const std::string& key) {
  std::vector<PlanJob> jobs;
  for (const std::string& item : file.get_string_list(key)) {
    PlanJob job;
    const auto colon = item.find(':');
    job.app = item.substr(0, colon);
    if (colon != std::string::npos) {
      try {
        std::size_t used = 0;
        job.nodes = std::stoi(item.substr(colon + 1), &used);
        if (used != item.size() - colon - 1) throw std::invalid_argument("trailing");
      } catch (const std::exception&) {
        throw std::invalid_argument("ConfigFile: " + file.where(key) + ": job '" + item +
                                    "' wants APP or APP:NODES");
      }
      // An explicit node count must be a real allocation: "fft3d:-3" and
      // "fft3d:0" used to slip through here and either throw much later
      // (without the offending line) or silently mean "fill the machine".
      if (job.nodes < 1) {
        throw std::invalid_argument("ConfigFile: " + file.where(key) + ": job '" + item +
                                    "' wants a node count >= 1 (write just '" + job.app +
                                    "' to fill the machine)");
      }
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// Variant overrides are semicolon-separated `key=value` pairs, e.g.
///   plan.variant.qos2 = qos.num_classes=2; qos.weights=4,1
PlanVariant parse_variant(const ConfigFile& file, const std::string& key,
                          const std::string& label, const std::string& text) {
  PlanVariant variant;
  variant.label = label;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t semi = text.find(';', start);
    const std::size_t end = semi == std::string::npos ? text.size() : semi;
    std::string item = text.substr(start, end - start);
    const auto strip = [](std::string s) {
      const auto a = s.find_first_not_of(" \t");
      if (a == std::string::npos) return std::string();
      const auto b = s.find_last_not_of(" \t");
      return s.substr(a, b - a + 1);
    };
    item = strip(item);
    if (!item.empty()) {
      const auto eq = item.find('=');
      if (eq == std::string::npos || strip(item.substr(0, eq)).empty()) {
        throw std::invalid_argument("ConfigFile: " + file.where(key) + ": variant override '" +
                                    item + "' wants key=value");
      }
      variant.overrides.set(strip(item.substr(0, eq)), strip(item.substr(eq + 1)),
                            file.line_of(key));
    }
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  return variant;
}

}  // namespace

ExperimentPlan plan_from_config(const ConfigFile& file) {
  static const char* kVariantPrefix = "plan.variant.";
  static const std::vector<std::string> kPlanKeys{
      "plan.name",    "plan.mode",  "plan.routings",    "plan.placements",
      "plan.scales",  "plan.seeds", "plan.jobs",        "plan.targets",
      "plan.backgrounds", "plan.solos", "plan.cell_timeout_s", "plan.cell_retries",
  };

  ExperimentPlan plan;
  ConfigFile base_keys;
  for (const auto& [key, value] : file.values()) {
    if (key.rfind("plan.", 0) != 0) {
      base_keys.set(key, value, file.line_of(key));
      continue;
    }
    if (key.rfind(kVariantPrefix, 0) == 0) {
      const std::string label = key.substr(std::string(kVariantPrefix).size());
      if (label.empty()) {
        throw std::invalid_argument("plan_from_config: " + file.where(key) +
                                    ": variant needs a label (plan.variant.<label>)");
      }
      plan.variants.push_back(parse_variant(file, key, label, value));
      continue;
    }
    if (!contains(kPlanKeys, key)) {
      throw std::invalid_argument("plan_from_config: " + file.where(key) +
                                  ": unknown plan key '" + key + "'");
    }
  }
  plan.base = apply_config(StudyConfig{}, base_keys);

  plan.name = file.get_string("plan.name", "campaign");
  if (file.has("plan.mode")) plan.mode = plan_mode_from_string(file.get_string("plan.mode"));
  plan.routings = file.get_string_list("plan.routings");
  for (const std::string& name : file.get_string_list("plan.placements")) {
    try {
      plan.placements.push_back(placement_from_string(name));
    } catch (const std::exception&) {
      throw std::invalid_argument("ConfigFile: " + file.where("plan.placements") +
                                  ": unknown placement '" + name + "'");
    }
  }
  plan.scales = file.get_int_list("plan.scales");
  plan.seeds = file.get_seed_list("plan.seeds");
  plan.jobs = parse_plan_jobs(file, "plan.jobs");
  plan.targets = file.get_string_list("plan.targets");
  plan.backgrounds = file.get_string_list("plan.backgrounds");
  plan.mixed_solos = file.get_bool("plan.solos", true);
  plan.cell_timeout_s = file.get_double("plan.cell_timeout_s", 0.0);
  if (plan.cell_timeout_s < 0) {
    throw std::invalid_argument("ConfigFile: " + file.where("plan.cell_timeout_s") +
                                ": must be >= 0");
  }
  plan.cell_retries = file.get_int("plan.cell_retries", 2);
  if (plan.cell_retries < 0) {
    throw std::invalid_argument("ConfigFile: " + file.where("plan.cell_retries") +
                                ": must be >= 0");
  }

  plan.validate();
  return plan;
}

ExperimentPlan load_plan(const std::string& path) {
  return plan_from_config(ConfigFile::load(path));
}

}  // namespace dfly

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpi/job.hpp"
#include "sim/time.hpp"

/// Synthetic traffic patterns from the interconnect-evaluation literature
/// (Kim et al. ISCA'08 and successors). These are not among the paper's nine
/// Table I applications; they extend the study with the classic stressors
/// used to characterise Dragonfly routing: adversarial group-to-group
/// traffic exposes minimal routing's single-global-link bottleneck, incast
/// exposes endpoint congestion, and shift/bisection patterns probe specific
/// path classes. The ablation benches use them to reproduce the classic
/// minimal-vs-Valiant-vs-UGAL crossover that motivates adaptive routing.
namespace dfly::workloads {

// ---------------------------------------------------------------------------
// Incast — many senders converge on few receivers (endpoint hot spot).
// ---------------------------------------------------------------------------
struct IncastParams {
  /// Number of receiver ranks (ranks [0, fanin_targets) receive).
  int fanin_targets{1};
  std::int64_t msg_bytes{4096};
  int iterations{200};
  /// Pause between bursts on every sender.
  SimTime interval{2 * kUs};
  /// Outstanding sends drained per window on every sender.
  int window{32};
};

/// All non-target ranks fire at target rank (sender_rank % fanin_targets).
/// Receivers run in sink mode: the pattern studies network/endpoint
/// congestion, not receiver-side consumption.
class IncastMotif final : public mpi::Motif {
 public:
  explicit IncastMotif(IncastParams params) : p_(params) {}
  std::string name() const override { return "Incast"; }
  mpi::Task run(mpi::RankCtx& ctx) const override;
  const IncastParams& params() const { return p_; }

 private:
  IncastParams p_;
};

// ---------------------------------------------------------------------------
// Shift — fixed-stride permutation: rank r sends to (r + stride) mod n.
// ---------------------------------------------------------------------------
struct ShiftParams {
  int stride{1};
  std::int64_t msg_bytes{4096};
  int iterations{300};
  SimTime interval{1 * kUs};
  int window{32};
};

/// Permutation traffic: every rank has exactly one destination, so each
/// minimal path carries exactly one flow — the cleanest probe of path-class
/// bandwidth. With stride == nodes-per-group (under linear placement) this
/// becomes the classic neighbour-group adversarial pattern.
class ShiftMotif final : public mpi::Motif {
 public:
  explicit ShiftMotif(ShiftParams params) : p_(params) {}
  std::string name() const override { return "Shift"; }
  mpi::Task run(mpi::RankCtx& ctx) const override;
  const ShiftParams& params() const { return p_; }

 private:
  ShiftParams p_;
};

// ---------------------------------------------------------------------------
// Group-adversarial (ADV+k) — every rank in group G targets a random rank
// whose group is G+k (Kim et al. ISCA'08 worst case for minimal routing).
// ---------------------------------------------------------------------------
struct GroupAdversarialParams {
  /// Group offset k: traffic from group G goes to group (G + k) mod g.
  int group_stride{1};
  /// Ranks per group under the intended placement. The motif works on rank
  /// arithmetic, so pair it with PlacementPolicy::kLinear (or kContiguous)
  /// and set this to nodes-per-group (p*a) so that rank blocks coincide
  /// with groups; under random placement it degenerates to permutation
  /// traffic, which is exactly the ISCA'08 observation about randomisation.
  int ranks_per_group{32};
  std::int64_t msg_bytes{4096};
  int iterations{300};
  SimTime interval{1 * kUs};
  int window{32};
};

/// ADV+k: all minimal traffic from one group funnels through the single
/// global link between the group pair, so minimal routing saturates at
/// 1/(a*p) of injection bandwidth while Valiant-style spreading keeps
/// scaling — the canonical argument for non-minimal adaptive routing.
class GroupAdversarialMotif final : public mpi::Motif {
 public:
  explicit GroupAdversarialMotif(GroupAdversarialParams params) : p_(params) {}
  std::string name() const override { return "ADV+" + std::to_string(p_.group_stride); }
  mpi::Task run(mpi::RankCtx& ctx) const override;
  const GroupAdversarialParams& params() const { return p_; }

 private:
  GroupAdversarialParams p_;
};

// ---------------------------------------------------------------------------
// Ping-pong — paired round-trip latency probe.
// ---------------------------------------------------------------------------
struct PingPongParams {
  std::int64_t msg_bytes{1024};
  int iterations{100};
};

/// Rank r < n/2 plays ping with partner r + n/2: a strict request/response
/// chain with exactly one message in flight per pair. Communication time
/// equals round-trip count x one-way latency, which the latency tests use
/// to validate the network's timing model end to end.
class PingPongMotif final : public mpi::Motif {
 public:
  explicit PingPongMotif(PingPongParams params) : p_(params) {}
  std::string name() const override { return "PingPong"; }
  mpi::Task run(mpi::RankCtx& ctx) const override;
  const PingPongParams& params() const { return p_; }

 private:
  PingPongParams p_;
};

// ---------------------------------------------------------------------------
// Bisection exchange — simultaneous full-duplex exchange across the halves.
// ---------------------------------------------------------------------------
struct BisectionParams {
  std::int64_t msg_bytes{65536};
  int iterations{40};
  SimTime interval{0};
};

/// Rank r exchanges with (r + n/2) mod n in both directions at once; every
/// message crosses the bisection, so aggregate throughput measures the
/// machine's effective bisection bandwidth under the chosen routing.
class BisectionMotif final : public mpi::Motif {
 public:
  explicit BisectionMotif(BisectionParams params) : p_(params) {}
  std::string name() const override { return "Bisection"; }
  mpi::Task run(mpi::RankCtx& ctx) const override;
  const BisectionParams& params() const { return p_; }

 private:
  BisectionParams p_;
};

// ---------------------------------------------------------------------------
// Hot-region — a tunable mix of uniform and hot-spot traffic.
// ---------------------------------------------------------------------------
struct HotRegionParams {
  /// Fraction (x1000) of messages aimed at the hot region, e.g. 250 = 25%.
  int hot_per_mille{250};
  /// The hot region is ranks [0, hot_ranks).
  int hot_ranks{8};
  std::int64_t msg_bytes{4096};
  int iterations{300};
  SimTime interval{1 * kUs};
  int window{32};
};

/// Background uniform traffic with a dialable hot spot: the knob moves the
/// system continuously between UR (0) and incast (1000), exposing where each
/// routing policy starts to collapse.
class HotRegionMotif final : public mpi::Motif {
 public:
  explicit HotRegionMotif(HotRegionParams params) : p_(params) {}
  std::string name() const override { return "HotRegion"; }
  mpi::Task run(mpi::RankCtx& ctx) const override;
  const HotRegionParams& params() const { return p_; }

 private:
  HotRegionParams p_;
};

// ---------------------------------------------------------------------------
// Sparse exchange — irregular vector alltoall (graph/AMR communication).
// ---------------------------------------------------------------------------
struct SparseExchangeParams {
  /// Probability (x1000) that a (src,dst) lane carries traffic, e.g. 200 = 20%.
  int density_per_mille{200};
  /// Base payload of a populated lane; the deterministic pattern scales it
  /// by 1..4x so lane weights are skewed like real sparse matrices.
  std::int64_t msg_bytes{16384};
  int iterations{10};
  SimTime compute{20 * kUs};
  /// Seed of the lane pattern (shared by all ranks; decouples the pattern
  /// from the simulation seed so placements can vary while traffic stays).
  std::uint64_t pattern_seed{1};
};

/// Each iteration performs an MPI_Alltoallv over a deterministic random
/// sparsity pattern: every rank derives the same lane matrix from
/// (pattern_seed, iteration), so send/receive vectors are mirror-consistent
/// without any coordination traffic. This is the communication shape of
/// graph analytics and adaptive-mesh codes — unbalanced per-pair volumes
/// that stress routing differently from the uniform Alltoall of FFT3D.
class SparseExchangeMotif final : public mpi::Motif {
 public:
  explicit SparseExchangeMotif(SparseExchangeParams params) : p_(params) {}
  std::string name() const override { return "SparseExchange"; }
  mpi::Task run(mpi::RankCtx& ctx) const override;
  const SparseExchangeParams& params() const { return p_; }

  /// Bytes rank `src` sends to rank `dst` in `iteration` (0 for unpopulated
  /// lanes and for src == dst). Deterministic; tests and the motif share it.
  std::int64_t lane_bytes(int src, int dst, int iteration) const;

 private:
  SparseExchangeParams p_;
};

}  // namespace dfly::workloads

#include "routing/ugal.hpp"

#include "routing/common.hpp"

namespace dfly::routing {

RouteDecision UgalRouting::route(Router& router, Packet& pkt) {
  const Dragonfly& topo = router.topo();
  const int dst_group = topo.group_of_router(dst_router_of(router, pkt));
  if (pkt.hops == 0 && dst_group != router.group()) {
    // One-time source decision over sampled candidates.
    Candidate best_min;
    for (int i = 0; i < params_.min_candidates; ++i) {
      const Candidate c = sample_minimal(router, pkt);
      if (best_min.port < 0 || c.occupancy < best_min.occupancy) best_min = c;
    }
    Candidate best_nonmin;
    for (int i = 0; i < params_.nonmin_candidates; ++i) {
      const Candidate c = sample_nonminimal(router, pkt, node_variant_);
      if (c.int_group < 0) continue;  // degenerate small system
      if (best_nonmin.port < 0 || c.occupancy < best_nonmin.occupancy) best_nonmin = c;
    }
    const bool go_minimal =
        best_nonmin.port < 0 ||
        best_min.occupancy <= params_.nonmin_weight * best_nonmin.occupancy + params_.bias;
    if (!go_minimal) {
      commit_valiant(pkt, best_nonmin.int_group, best_nonmin.int_router);
      pkt.phase = RoutePhase::kAtSource;
      return RouteDecision{static_cast<std::int16_t>(best_nonmin.port), vc_for(pkt)};
    }
    return RouteDecision{static_cast<std::int16_t>(best_min.port), vc_for(pkt)};
  }
  return continue_route(router, pkt);
}

}  // namespace dfly::routing

// DL shares the AllreducePeriodicMotif engine with CosmoFlow (cosmoflow.cpp);
// this TU hosts the DL-specific helper.

#include "workloads/motifs.hpp"

namespace dfly::workloads {

/// Convenience: a fully-constructed DL motif.
std::unique_ptr<AllreducePeriodicMotif> make_dl(int scale) {
  AllreducePeriodicParams p = AllreducePeriodicMotif::dl();
  p.iterations = scaled(p.iterations, scale, p.min_iterations);
  return std::make_unique<AllreducePeriodicMotif>(std::move(p));
}

}  // namespace dfly::workloads

#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "core/json_report.hpp"

namespace dfly::serve {

namespace {

/// Minimal recursive-descent JSON reader over exactly the shapes the
/// protocol uses: one object of string keys whose values are strings,
/// objects-of-strings, or (ignored) scalars. Kept deliberately smaller than
/// a general JSON library — unknown structure is an error, not a tree.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("request: " + why + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\r' || text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (at_end() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              value |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // The protocol is byte-oriented (plan files are ASCII/UTF-8 passed
          // through verbatim); only control characters are \u-escaped.
          if (value > 0xff) fail("\\u escape above 0xff unsupported");
          out += static_cast<char>(value);
          pos_ += 4;
          break;
        }
        default: fail("unknown escape");
      }
    }
    fail("unterminated string");
  }

  /// Skip one scalar value we don't care about (number / true / false / null).
  void skip_scalar() {
    const char c = peek();
    if (c == '-' || (c >= '0' && c <= '9')) {
      ++pos_;
      while (pos_ < text_.size() &&
             (std::strchr("0123456789.eE+-", text_[pos_]) != nullptr)) {
        ++pos_;
      }
      return;
    }
    for (const char* word : {"true", "false", "null"}) {
      const std::size_t len = std::strlen(word);
      if (text_.compare(pos_, len, word) == 0) {
        pos_ += len;
        return;
      }
    }
    fail("unsupported value");
  }

  /// Parse {"k":"v",...} where every value must be a string.
  std::vector<std::pair<std::string, std::string>> parse_string_object() {
    std::vector<std::pair<std::string, std::string>> out;
    expect('{');
    if (consume('}')) return out;
    for (;;) {
      std::string key = parse_string();
      expect(':');
      std::string value = parse_string();
      out.emplace_back(std::move(key), std::move(value));
      if (consume('}')) return out;
      expect(',');
    }
  }

 private:
  const std::string& text_;
  std::size_t pos_{0};
};

}  // namespace

Request parse_request(const std::string& line) {
  JsonReader in(line);
  Request request;
  bool have_op = false;
  std::string mode;
  in.expect('{');
  if (!in.consume('}')) {
    for (;;) {
      const std::string key = in.parse_string();
      in.expect(':');
      if (key == "op") {
        request.op = in.parse_string();
        have_op = true;
      } else if (key == "plan") {
        request.plan_text = in.parse_string();
      } else if (key == "set") {
        request.sets = in.parse_string_object();
      } else if (key == "campaign") {
        request.campaign = in.parse_string();
      } else if (key == "mode") {
        mode = in.parse_string();
      } else if (in.peek() == '"') {
        in.parse_string();  // tolerate unknown string fields (forward compat)
      } else {
        in.skip_scalar();
      }
      if (in.consume('}')) break;
      in.expect(',');
    }
  }
  if (!in.at_end()) in.fail("trailing content after request object");
  if (!have_op) throw std::invalid_argument("request: missing \"op\"");
  if (request.op != "submit" && request.op != "status" && request.op != "cancel" &&
      request.op != "stats" && request.op != "shutdown") {
    throw std::invalid_argument("request: unknown op '" + request.op + "'");
  }
  if (request.op == "submit" && request.plan_text.empty()) {
    throw std::invalid_argument("request: submit needs a non-empty \"plan\"");
  }
  if ((request.op == "status" || request.op == "cancel") && request.campaign.empty()) {
    throw std::invalid_argument("request: " + request.op + " needs a \"campaign\" id");
  }
  if (!mode.empty()) {
    if (mode != "drain" && mode != "now") {
      throw std::invalid_argument("request: shutdown mode wants drain|now, got '" + mode + "'");
    }
    request.drain = mode == "drain";
  }
  return request;
}

std::string format_request(const Request& request) {
  JsonWriter w;
  w.begin_object();
  w.key("op").value(request.op);
  if (!request.plan_text.empty()) w.key("plan").value(request.plan_text);
  if (!request.sets.empty()) {
    w.key("set").begin_object();
    for (const auto& [key, value] : request.sets) w.key(key).value(value);
    w.end_object();
  }
  if (!request.campaign.empty()) w.key("campaign").value(request.campaign);
  if (request.op == "shutdown" && !request.drain) w.key("mode").value("now");
  w.end_object();
  return w.str();
}

bool is_control_line(const std::string& line) {
  return line.rfind("{\"serve\":", 0) == 0;
}

std::string control_field(const std::string& line, const std::string& key) {
  const std::string needle = '"' + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  std::size_t pos = at + needle.size();
  if (pos >= line.size()) return "";
  if (line[pos] != '"') {
    // Bare scalar (number / bool): read to the next delimiter.
    const std::size_t end = line.find_first_of(",}", pos);
    return line.substr(pos, end == std::string::npos ? std::string::npos : end - pos);
  }
  ++pos;
  std::string out;
  while (pos < line.size() && line[pos] != '"') {
    if (line[pos] == '\\' && pos + 1 < line.size()) {
      const char esc = line[pos + 1];
      out += esc == 'n' ? '\n' : esc == 't' ? '\t' : esc;
      pos += 2;
      continue;
    }
    out += line[pos++];
  }
  return out;
}

// --- socket helpers ----------------------------------------------------------

int connect_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("serve: socket(): ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error("serve: cannot connect to " + socket_path + ": " +
                             std::strerror(saved));
  }
  return fd;
}

bool write_all(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-campaign must surface as EPIPE
    // (which the session turns into a cancel), never as a fatal SIGPIPE.
    const ssize_t n =
        ::send(fd, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool pop_line(std::string& buffer, std::string& line) {
  const std::size_t newline = buffer.find('\n');
  if (newline == std::string::npos) return false;
  line.assign(buffer, 0, newline);
  buffer.erase(0, newline + 1);
  return true;
}

// --- client modes ------------------------------------------------------------

namespace {

/// Read response lines until EOF, calling on_line for each complete line.
/// Returns false on a read error.
template <typename Fn>
bool read_lines(int fd, Fn&& on_line) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return true;  // server closed: response complete
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::string line;
    while (pop_line(buffer, line)) on_line(line);
  }
}

}  // namespace

int submit_plan(const std::string& socket_path, const std::string& plan_text,
                const std::vector<std::pair<std::string, std::string>>& sets,
                std::FILE* out, std::FILE* err) {
  int fd = -1;
  try {
    fd = connect_unix(socket_path);
  } catch (const std::exception& error) {
    std::fprintf(err, "dflysim: %s\n", error.what());
    return 1;
  }
  Request request;
  request.op = "submit";
  request.plan_text = plan_text;
  request.sets = sets;
  if (!write_all(fd, format_request(request) + '\n')) {
    std::fprintf(err, "dflysim: lost connection to %s while submitting\n",
                 socket_path.c_str());
    ::close(fd);
    return 1;
  }

  int status = 1;  // no "done" line = protocol/connection error
  bool done = false;
  const bool read_ok = read_lines(fd, [&](const std::string& line) {
    if (!is_control_line(line)) {
      // A raw campaign cell record: forward byte-identically.
      std::fprintf(out, "%s\n", line.c_str());
      std::fflush(out);
      return;
    }
    const std::string kind = control_field(line, "serve");
    if (kind == "accepted") {
      std::fprintf(err, "campaign %s accepted (%s cells)\n",
                   control_field(line, "campaign").c_str(),
                   control_field(line, "cells").c_str());
    } else if (kind == "cell_failed") {
      std::fprintf(err, "cell %s FAILED: %s\n", control_field(line, "cell").c_str(),
                   control_field(line, "message").c_str());
    } else if (kind == "done") {
      done = true;
      status = control_field(line, "ok") == "true" ? 0 : 2;
      std::fprintf(err, "campaign %s: %s/%s cells completed%s\n",
                   control_field(line, "campaign").c_str(),
                   control_field(line, "completed").c_str(),
                   control_field(line, "cells").c_str(),
                   control_field(line, "cancelled") == "true" ? " (cancelled)" : "");
    } else if (kind == "error") {
      done = true;
      status = 1;
      std::fprintf(err, "dflysim: server rejected request: %s\n",
                   control_field(line, "message").c_str());
    }
  });
  ::close(fd);
  if (!read_ok || !done) {
    std::fprintf(err, "dflysim: connection to %s ended before the campaign finished\n",
                 socket_path.c_str());
    return 1;
  }
  return status;
}

int request_shutdown(const std::string& socket_path, bool drain, std::FILE* err) {
  int fd = -1;
  try {
    fd = connect_unix(socket_path);
  } catch (const std::exception& error) {
    std::fprintf(err, "dflysim: %s\n", error.what());
    return 1;
  }
  Request request;
  request.op = "shutdown";
  request.drain = drain;
  bool ok = write_all(fd, format_request(request) + '\n');
  std::string reply;
  if (ok) {
    ok = false;
    read_lines(fd, [&](const std::string& line) {
      if (control_field(line, "serve") == "ok") ok = true;
      reply = line;
    });
  }
  ::close(fd);
  if (!ok) {
    std::fprintf(err, "dflysim: shutdown not acknowledged by %s%s%s\n", socket_path.c_str(),
                 reply.empty() ? "" : ": ", reply.c_str());
    return 1;
  }
  return 0;
}

}  // namespace dfly::serve

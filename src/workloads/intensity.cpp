#include "workloads/intensity.hpp"

#include <cstdio>

namespace dfly::workloads {

IntensityMetrics measure_intensity(const mpi::Job& job) {
  IntensityMetrics m;
  m.app = job.name();
  std::int64_t bytes = 0;
  std::int64_t peak = 0;
  std::int64_t msgs = 0;
  for (int r = 0; r < job.size(); ++r) {
    bytes += job.rank(r).bytes_sent();
    msgs += job.rank(r).messages_sent();
    if (job.rank(r).peak_ingress_bytes() > peak) peak = job.rank(r).peak_ingress_bytes();
  }
  m.total_msg_mb = static_cast<double>(bytes) / 1.0e6;
  m.execution_ms = to_ms(job.execution_time());
  m.injection_rate_gbs =
      m.execution_ms > 0 ? static_cast<double>(bytes) / to_ns(job.execution_time()) : 0.0;
  m.peak_ingress_bytes = static_cast<double>(peak);
  m.messages = msgs;
  return m;
}

std::string format_volume(double bytes) {
  char buf[32];
  if (bytes >= 1.0e6) {
    std::snprintf(buf, sizeof buf, "%.2fMB", bytes / 1.0e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fKB", bytes / 1.0e3);
  }
  return buf;
}

}  // namespace dfly::workloads

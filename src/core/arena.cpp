#include "core/arena.hpp"

#include <atomic>
#include <cstdlib>
#include <utility>

namespace dfly {

namespace {

thread_local SimArena* t_current_arena = nullptr;

/// -1 = not resolved yet, 0 = disabled, 1 = enabled. Resolved lazily from
/// DFSIM_NO_ARENA so tests and the CLI can override either way first.
std::atomic<int> g_arena_enabled{-1};

int resolve_arena_enabled() {
  const char* env = std::getenv("DFSIM_NO_ARENA");
  const bool disabled = env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  return disabled ? 0 : 1;
}

template <typename T>
void track_peak(std::size_t& peak, T value) {
  if (static_cast<std::size_t>(value) > peak) peak = static_cast<std::size_t>(value);
}

}  // namespace

bool arena_enabled() {
  int state = g_arena_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = resolve_arena_enabled();
    g_arena_enabled.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

void set_arena_enabled(bool enabled) {
  g_arena_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

SimArena* SimArena::current() { return t_current_arena; }

bool SimArena::try_acquire(const void* owner) {
  if (owner_ != nullptr || owner == nullptr) return false;
  owner_ = owner;
  ++stats_.cells;
  return true;
}

void SimArena::release(const void* owner) {
  if (owner_ == owner) owner_ = nullptr;
}

Engine SimArena::take_engine() {
  Engine engine = std::move(engine_);
  engine_ = Engine{};
  engine.reset();  // storage kept; clock/seq zeroed (no-op on a fresh engine)
  return engine;
}

void SimArena::return_engine(Engine&& engine) {
  track_peak(stats_.engine_peak_events, engine.peak_queued());
  track_peak(stats_.engine_event_capacity, engine.event_capacity());
  track_peak(stats_.closure_peak, engine.closure_capacity());
  engine.reset();
  engine_ = std::move(engine);
}

Engine SimArena::take_extra_engine() {
  if (extra_engines_.empty()) return Engine{};
  Engine engine = std::move(extra_engines_.front());
  extra_engines_.pop_front();
  engine.reset();
  return engine;
}

void SimArena::return_extra_engine(Engine&& engine) {
  track_peak(stats_.engine_peak_events, engine.peak_queued());
  track_peak(stats_.engine_event_capacity, engine.event_capacity());
  track_peak(stats_.closure_peak, engine.closure_capacity());
  engine.reset();
  extra_engines_.push_back(std::move(engine));
}

SimArena::NetStorage SimArena::take_net() {
  NetStorage storage = std::move(net_);
  net_ = NetStorage{};
  storage.pool.reset();  // hand out slot ids 0, 1, 2, ... like a fresh pool
  return storage;
}

void SimArena::return_net(NetStorage&& storage) {
  track_peak(stats_.pool_peak_packets, storage.pool.peak_in_use());
  track_peak(stats_.pool_capacity, storage.pool.capacity());
  storage.pool.reset();
  net_ = std::move(storage);
}

mpi::JobStorage SimArena::take_job_storage() {
  if (job_storage_.empty()) return {};
  mpi::JobStorage storage = std::move(job_storage_.front());
  job_storage_.pop_front();
  return storage;
}

void SimArena::return_job_storage(mpi::JobStorage&& storage) {
  track_peak(stats_.inflight_capacity, storage.inflight.capacity());
  for (const auto& rank : storage.ranks) {
    if (rank != nullptr) track_peak(stats_.match_capacity, rank->match_capacity());
  }
  job_storage_.push_back(std::move(storage));
}

mpi::SystemStorage SimArena::take_system_storage() {
  mpi::SystemStorage storage = std::move(system_storage_);
  system_storage_ = mpi::SystemStorage{};
  return storage;
}

void SimArena::return_system_storage(mpi::SystemStorage&& storage) {
  track_peak(stats_.owners_capacity, storage.owners.capacity());
  system_storage_ = std::move(storage);
}

void SimArena::shed() {
  if (in_use()) return;  // a live Study owns the storage; nothing to drop
  engine_ = Engine{};
  extra_engines_.clear();
  extra_engines_.shrink_to_fit();
  net_ = NetStorage{};
  job_storage_.clear();
  job_storage_.shrink_to_fit();
  system_storage_ = mpi::SystemStorage{};
  frame_pool_.trim();
}

ScopedArenaBinding::ScopedArenaBinding(SimArena* arena)
    : previous_(t_current_arena),
      frame_binding_(arena != nullptr ? &arena->frame_pool() : nullptr) {
  if (arena != nullptr) t_current_arena = arena;
}

ScopedArenaBinding::~ScopedArenaBinding() { t_current_arena = previous_; }

}  // namespace dfly

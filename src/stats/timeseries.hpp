#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace dfly {

/// Fixed-bucket time series: accumulates a value per time bucket.
/// Used for the paper's throughput-over-time plots (Figs 5, 9, 13b): add
/// delivered bytes at eject time, then read GB/ms per bucket.
class TimeSeries {
 public:
  explicit TimeSeries(SimTime bucket_width = kMs / 10) : bucket_width_(bucket_width) {}

  /// Drop every bucket (keeping capacity) and adopt a new bucket width —
  /// the in-place re-init used when stats blocks are recycled across cells.
  void reset(SimTime bucket_width) {
    bucket_width_ = bucket_width;
    buckets_.clear();
  }

  void add(SimTime when, double value) {
    const auto idx = static_cast<std::size_t>(when / bucket_width_);
    if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0.0);
    buckets_[idx] += value;
  }

  /// Element-wise accumulate another series with the same bucket width
  /// (extending to its length). Bucket values are integer-valued doubles far
  /// below 2^53 (byte counts), so the addition is exact and order-independent
  /// — parallel-cell shard merging (src/sim/pdes.hpp) relies on this.
  void merge_from(const TimeSeries& other) {
    if (other.buckets_.size() > buckets_.size()) buckets_.resize(other.buckets_.size(), 0.0);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  }

  SimTime bucket_width() const { return bucket_width_; }
  std::size_t num_buckets() const { return buckets_.size(); }
  double bucket(std::size_t i) const { return i < buckets_.size() ? buckets_[i] : 0.0; }
  SimTime bucket_start(std::size_t i) const { return static_cast<SimTime>(i) * bucket_width_; }

  /// Sum over all buckets.
  double total() const;
  /// Mean bucket value over [first, last) bucket indices (or all when empty).
  double mean_rate() const;
  /// Mean of the buckets that fall inside [t0, t1).
  double mean_rate_between(SimTime t0, SimTime t1) const;
  /// Max bucket value and the start time of that bucket.
  struct Peak {
    double value{0};
    SimTime when{0};
  };
  Peak peak() const;

  const std::vector<double>& buckets() const { return buckets_; }

 private:
  SimTime bucket_width_;
  std::vector<double> buckets_;
};

}  // namespace dfly

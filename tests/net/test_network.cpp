#include "net/network.hpp"

#include <gtest/gtest.h>

#include <set>

#include "routing/factory.hpp"
#include "../support/make_blueprint.hpp"

namespace dfly {
namespace {

/// Records message lifecycle events for direct network-level tests.
class SinkRecorder final : public MessageEvents {
 public:
  void message_sent(std::uint64_t id) override { sent.push_back(id); }
  void message_delivered(std::uint64_t id) override { delivered.push_back(id); }
  std::vector<std::uint64_t> sent, delivered;
};

struct NetFixture {
  explicit NetFixture(const std::string& routing_name = "MIN",
                      DragonflyParams params = DragonflyParams::tiny())
      : bp(testsupport::make_blueprint(params)), cfg(bp->net()), topo(&bp->topo()) {
    routing::RoutingContext context{&engine, topo, &cfg, 1};
    routing = routing::make_routing(routing_name, context);
    NetworkObservability obs;
    obs.keep_packet_records = true;
    net = std::make_unique<Network>(engine, *bp, *routing, /*num_apps=*/2, 1, obs);
    net->set_sink(sink);
  }

  Engine engine;
  std::shared_ptr<const SystemBlueprint> bp;
  const NetConfig& cfg;
  const Dragonfly* topo;
  std::unique_ptr<RoutingAlgorithm> routing;
  std::unique_ptr<Network> net;
  SinkRecorder sink;
};

TEST(Network, SingleMessageDelivered) {
  NetFixture f;
  const auto id = f.net->send_message(0, f.topo->num_nodes() - 1, 4096, 0);
  f.engine.run();
  ASSERT_EQ(f.sink.sent.size(), 1u);
  ASSERT_EQ(f.sink.delivered.size(), 1u);
  EXPECT_EQ(f.sink.sent[0], id);
  EXPECT_EQ(f.sink.delivered[0], id);
  // 4096B = 8 packets of 512B.
  EXPECT_EQ(f.net->packet_log().delivered_packets(0), 8u);
}

TEST(Network, PacketPayloadTailIsShort) {
  NetFixture f;
  f.net->send_message(0, 9, 1000, 0);  // 512 + 488
  f.engine.run();
  EXPECT_EQ(f.net->packet_log().delivered_packets(0), 2u);
  const auto& records = f.net->packet_log().records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].bytes + records[1].bytes, 1000);
}

TEST(Network, SelfSendBypassesNetwork) {
  NetFixture f;
  f.net->send_message(3, 3, 512, 0);
  f.engine.run();
  EXPECT_EQ(f.sink.sent.size(), 1u);
  EXPECT_EQ(f.sink.delivered.size(), 1u);
  EXPECT_EQ(f.net->packet_log().delivered_packets(0), 0u);  // no wire traffic
}

TEST(Network, UnloadedLatencyIsNearTopologyBound) {
  NetFixture f;
  // One packet, same group, different router: local hop only.
  const int src = 0;                        // router 0
  const int dst = f.topo->params().p * 1;   // router 1, same group
  f.net->send_message(src, dst, 512, 0);
  f.engine.run();
  const auto& log = f.net->packet_log();
  ASSERT_EQ(log.delivered_packets(0), 1u);
  // wire->eject: ser(terminal) happens before wire_time? wire_time is set at
  // NIC transmit start, so latency >= terminal ser + local ser + eject ser.
  const SimTime latency = log.latency(0).median();
  const SimTime ser = f.cfg.packet_serialization();
  EXPECT_GT(latency, 2 * ser);
  EXPECT_LT(latency, 100 * ser + 10 * f.cfg.router_latency);
}

TEST(Network, MinimalRoutingTakesAtMostThreeHops) {
  NetFixture f("MIN");
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const int src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(f.topo->num_nodes())));
    int dst = src;
    while (dst == src) {
      dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(f.topo->num_nodes())));
    }
    f.net->send_message(src, dst, 512, 0);
  }
  f.engine.run();
  EXPECT_EQ(f.net->packet_log().delivered_packets(0), 200u);
  for (const auto& r : f.net->packet_log().records()) {
    EXPECT_LE(r.hops, 3);
    EXPECT_FALSE(r.nonminimal);
  }
}

TEST(Network, ManyToOneCreatesBackpressureNotLoss) {
  NetFixture f("MIN");
  // Every node sends to node 0: heavy ejection contention.
  std::int64_t expected_bytes = 0;
  for (int n = 1; n < f.topo->num_nodes(); ++n) {
    f.net->send_message(n, 0, 8192, 0);
    expected_bytes += 8192;
  }
  f.engine.run();
  EXPECT_EQ(static_cast<std::int64_t>(f.sink.delivered.size()), f.topo->num_nodes() - 1);
  EXPECT_DOUBLE_EQ(f.net->packet_log().delivered(0).total(),
                   static_cast<double>(expected_bytes));
  // The incast must have produced queueing: p99 well above the median.
  const auto& lat = f.net->packet_log().latency(0);
  EXPECT_GT(lat.p99(), lat.median());
  EXPECT_EQ(f.net->in_flight_packets(), static_cast<std::int64_t>(f.net->pool().capacity()) -
                                             static_cast<std::int64_t>(f.net->pool().capacity()) +
                                             static_cast<std::int64_t>(f.net->pool().in_use()));
  EXPECT_EQ(f.net->pool().in_use(), 0u);  // everything drained back to the pool
}

TEST(Network, PerAppTrafficSeparated) {
  NetFixture f;
  f.net->send_message(0, 8, 2048, 0);
  f.net->send_message(1, 9, 4096, 1);
  f.engine.run();
  EXPECT_EQ(f.net->packet_log().delivered_packets(0), 4u);
  EXPECT_EQ(f.net->packet_log().delivered_packets(1), 8u);
  EXPECT_DOUBLE_EQ(f.net->packet_log().delivered(0).total(), 2048.0);
  EXPECT_DOUBLE_EQ(f.net->packet_log().delivered(1).total(), 4096.0);
}

TEST(Network, LinkStatsSeeTraffic) {
  NetFixture f;
  f.net->send_message(0, f.topo->num_nodes() - 1, 512, 0);
  f.engine.run();
  const LinkStats& stats = f.net->link_stats();
  std::int64_t nic_bytes = 0, router_bytes = 0;
  for (int link = 0; link < stats.num_links(); ++link) {
    if (stats.link_class(link) == LinkClass::kTerminal) {
      nic_bytes += stats.bytes(link);
    } else {
      router_bytes += stats.bytes(link);
    }
  }
  EXPECT_GE(nic_bytes, 512 * 2);    // NIC injection link + router terminal out
  EXPECT_GE(router_bytes, 512);     // at least one network hop
}

TEST(Network, CreditProtocolConservesCredits) {
  NetFixture f;
  for (int n = 1; n < 20; ++n) f.net->send_message(n, 0, 30000, 0);
  f.engine.run();
  // After quiescence every credit must be returned.
  for (int r = 0; r < f.topo->num_routers(); ++r) {
    Router& router = f.net->router(r);
    for (int port = 0; port < f.topo->radix(); ++port) {
      for (int vc = 0; vc < f.cfg.num_vcs; ++vc) {
        EXPECT_EQ(router.credits(port, vc), f.cfg.buffer_packets)
            << "router " << r << " port " << port << " vc " << vc;
      }
      EXPECT_EQ(router.occupancy(port), 0);
    }
  }
}

TEST(Network, ThroughputBoundedByTerminalLink) {
  NetFixture f("MIN");
  // One node streams 1MB to a peer: delivery rate can't beat link rate.
  f.net->send_message(0, 32, 1 << 20, 0);
  f.engine.run();
  const SimTime makespan = f.engine.now();
  const double gbps = (static_cast<double>(1 << 20) * 8.0) / to_ns(makespan);
  EXPECT_LE(gbps, f.cfg.link_gbps * 1.01);
  EXPECT_GT(gbps, f.cfg.link_gbps * 0.5);  // and reasonably close to it
}

}  // namespace
}  // namespace dfly

// Figure 5: FFT3D and Halo3D network throughput (GB/ms) along simulated
// time, standalone and co-running, under PAR and Q-adaptive. The co-run
// series show whether the routing protects FFT3D's throughput from
// Halo3D's interference (the paper reports 2.58x higher interfered FFT3D
// throughput under Q-adp). Each case also prints a terminal sparkline and
// writes fig5_<routing>_<case>.svg. The four cases run concurrently.

#include <string>

#include "bench_common.hpp"
#include "core/study.hpp"
#include "viz/ascii.hpp"
#include "viz/charts.hpp"

namespace {

using namespace dfly;

std::string run_case(const StudyConfig& config, bool interfered) {
  Study study(config);
  const int half = config.topo.num_nodes() / 2;
  study.add_app("FFT3D", half);
  if (interfered) study.add_app("Halo3D", half);
  const Report report = study.run();

  std::string out;
  char line[160];
  const PacketLog& log = study.network().packet_log();
  viz::LineChart chart("Fig 5 throughput — " + config.routing +
                           (interfered ? " (co-run)" : " (alone)"),
                       "time (ms)", "GB/ms");
  for (int a = 0; a < study.num_jobs(); ++a) {
    const std::string label = report.apps[a].app + (interfered ? "_interfered" : "_alone") +
                              "_" + config.routing;
    const TimeSeries& series = log.delivered(a);
    std::snprintf(line, sizeof line, "series %s buckets_ms %.3f :", label.c_str(),
                  to_ms(series.bucket_width()));
    out += line;
    for (std::size_t b = 0; b < series.num_buckets(); ++b) {
      std::snprintf(line, sizeof line, " %.3f",
                    series.bucket(b) / 1e9 / to_ms(series.bucket_width()));
      out += line;
    }
    out += '\n';
    const double mean = series.num_buckets() == 0
                            ? 0.0
                            : series.total() / 1e9 /
                                  to_ms(static_cast<SimTime>(series.num_buckets()) *
                                        series.bucket_width());
    std::snprintf(line, sizeof line, "summary %s mean_throughput_gb_per_ms %.3f finish_ms %.3f\n",
                  label.c_str(), mean, to_ms(study.job(a).finish_time()));
    out += line;
    std::vector<double> rates, xs;
    for (std::size_t b = 0; b < series.num_buckets(); ++b) {
      xs.push_back(to_ms(series.bucket_start(b)));
      rates.push_back(series.bucket(b) / 1e9 / to_ms(series.bucket_width()));
    }
    out += "spark " + label + ": " + viz::sparkline(rates) + "\n";
    chart.add_series(report.apps[a].app, xs, rates);
  }
  const std::string svg_name = "fig5_" + config.routing +
                               (interfered ? "_corun" : "_alone") + ".svg";
  chart.save(svg_name);
  out += "wrote " + svg_name + "\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::Options::parse(argc, argv, 32);

  std::vector<std::function<std::string()>> tasks;
  for (const std::string routing : {"PAR", "Q-adp"}) {
    for (const bool interfered : {false, true}) {
      const StudyConfig config = options.config(routing);
      tasks.push_back([config, interfered] { return run_case(config, interfered); });
    }
  }
  const auto blocks = bench::parallel_map(tasks);

  bench::print_header("Figure 5 — FFT3D / Halo3D throughput over time");
  for (const auto& block : blocks) std::fputs(block.c_str(), stdout);
  std::printf("\nExpected shape (paper): Halo3D is flat-high in all cases; interfered\n"
              "FFT3D collapses under PAR but retains much higher throughput under Q-adp,\n"
              "recovering fully once Halo3D finishes.\n");
  return 0;
}

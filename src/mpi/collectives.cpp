#include <cassert>
#include <utility>

#include "mpi/job.hpp"
#include "mpi/rank.hpp"

namespace dfly::mpi {

Task RankCtx::send(int dst_rank, std::int64_t bytes, int tag) {
  const ReqId id = isend(dst_rank, bytes, tag);
  co_await wait(id);
}

Task RankCtx::recv(int src_rank, int tag) {
  const ReqId id = irecv(src_rank, tag);
  co_await wait(id);
}

Task RankCtx::wait_all(std::vector<ReqId> ids) {
  // Waiting sequentially is equivalent: the rank unblocks when the slowest
  // request completes, and each wait accounts only the residual block time.
  for (const ReqId id : ids) co_await wait(id);
}

Task RankCtx::barrier() {
  // Zero-payload allreduce; 8B control messages model the header exchange.
  co_await allreduce(8);
}

Task RankCtx::allreduce(std::int64_t bytes) {
  // SST/Firefly arranges ranks in a binary tree: the payload is reduced from
  // the leaves to the root and broadcast back down. The down-phase fan-out
  // posts both child messages back-to-back (peak ingress = 2 messages).
  const int tag_up = next_coll_tag();
  const int tag_down = next_coll_tag();
  const int n = size();
  const int me = rank_;
  const int left = 2 * me + 1;
  const int right = 2 * me + 2;
  const int parent = (me - 1) / 2;

  if (left < n && right < n) {
    std::vector<ReqId> kids{irecv(left, tag_up), irecv(right, tag_up)};
    co_await wait_all(std::move(kids));
  } else if (left < n) {
    co_await recv(left, tag_up);
  }

  if (me != 0) {
    co_await send(parent, bytes, tag_up);
    co_await recv(parent, tag_down);
  }

  std::vector<ReqId> down;
  if (left < n) down.push_back(isend(left, bytes, tag_down));
  if (right < n) down.push_back(isend(right, bytes, tag_down));
  if (!down.empty()) co_await wait_all(std::move(down));
}

Task RankCtx::alltoall(std::int64_t bytes, std::vector<int> members) {
  // SST's multi-step ring exchange: in round i, member m sends to member
  // m+i and receives from member m-i. One send per round, so the operation
  // peak ingress is a single message (§IV).
  const int n = static_cast<int>(members.size());
  int me_idx = -1;
  for (int i = 0; i < n; ++i) {
    if (members[static_cast<std::size_t>(i)] == rank_) {
      me_idx = i;
      break;
    }
  }
  assert(me_idx >= 0 && "caller is not a member of the communicator");
  const int tag = next_coll_tag();
  for (int i = 1; i < n; ++i) {
    const int to = members[static_cast<std::size_t>((me_idx + i) % n)];
    const int from = members[static_cast<std::size_t>((me_idx - i + n) % n)];
    const ReqId r = irecv(from, tag);
    const ReqId s = isend(to, bytes, tag);
    co_await wait(r);
    co_await wait(s);
  }
}

}  // namespace dfly::mpi

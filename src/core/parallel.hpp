#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/mutex.hpp"

/// Parallel experiment execution.
///
/// Every study in this suite is a sweep of independent (config, seed) cells:
/// each cell builds its own Engine, Network, Rng and stats, runs to
/// completion, and emits a Report. Cells share nothing, so they shard
/// trivially across threads — the only discipline required is that results
/// land in pre-sized slots indexed by cell, which makes the aggregate output
/// bit-identical to a sequential run regardless of worker count or
/// completion order.
namespace dfly {

/// Per-worker exception diagnostics collected by a run_indexed() call.
///
/// Historically only the FIRST exception thrown by any worker survived (it
/// was rethrown; everything else was dropped on the floor). Campaign-grade
/// diagnostics need the full picture: how many cells each worker lost and
/// what the first failure on each worker looked like — enough to tell "one
/// pathological cell" from "worker 3's arena is poisoned" from "the disk
/// filled up everywhere". run_plan() forwards this into PlanOutcome.
struct WorkerErrors {
  struct Worker {
    std::size_t failures{0};  ///< cells whose fn threw on this worker
    std::string first;        ///< what() of this worker's first exception
  };
  std::vector<Worker> workers;  ///< index = worker id (size = worker count)

  std::size_t total() const {
    std::size_t sum = 0;
    for (const Worker& worker : workers) sum += worker.failures;
    return sum;
  }
  bool any() const { return total() > 0; }
  /// "worker 0: 3 failures, first: bad_alloc; worker 2: ..." (empty when
  /// clean) — the one-line form the CLI prints.
  std::string summary() const;
};

/// Thread-pool runner for independent simulation cells.
///
/// Worker-count resolution, in priority order: an explicit `jobs` argument
/// (> 0), the DFSIM_JOBS environment variable, then the caller's fallback
/// (sequential by default). The same resolution backs the `--jobs=N` flag on
/// `dflysim` and on every bench binary.
class ParallelRunner {
 public:
  /// `jobs` <= 0 resolves through resolve_jobs(jobs, /*fallback=*/1).
  explicit ParallelRunner(int jobs = 0);

  int jobs() const { return jobs_; }

  /// `requested` > 0 wins; else DFSIM_JOBS (which must be a positive
  /// integer, parsed strictly over the whole string — "4x", "abc", "" and
  /// "0" throw std::invalid_argument with one clear line, exactly like a bad
  /// config value, instead of being silently truncated or ignored); else
  /// `fallback` (clamped to >= 1).
  static int resolve_jobs(int requested, int fallback = 1);

  /// Intra-cell thread-count resolution for --cell-threads (the second
  /// parallelism level: threads *inside* one cell, src/sim/pdes.hpp).
  /// `requested` > 0 wins; else DFSIM_CELL_THREADS with the same strict
  /// full-string parse as DFSIM_JOBS; else 1 (sequential). Output never
  /// depends on the resolved value.
  static int resolve_cell_threads(int requested);

  /// Per-cell peak-RSS budget used by memory_jobs_cap(): the measured
  /// high-water mutable footprint of one full 1,056-node cell *with*
  /// blueprint sharing and arena reuse on, rounded up generously. Re-derive
  /// from the BENCH_memory.json CI artifact when the footprint moves. This
  /// is a paper-shape heuristic: sweeps over substantially larger custom
  /// topologies should bound workers explicitly (--jobs / DFSIM_JOBS), which
  /// always overrides the derived cap.
  static constexpr std::uint64_t kCellBudgetBytes = 192ull << 20;  // 192 MiB

  /// Workers admitted by available memory: in-flight cells may budget at
  /// most half of the memory this process can actually use — physical RAM,
  /// further limited by a cgroup ceiling when one is set (containers/CI) —
  /// at kCellBudgetBytes each (the blueprint keeps the read-only plan out of
  /// that constant; pre-blueprint this was a fixed cap of 12 workers). Falls
  /// back to 12 when no limit can be determined; clamped to [1, 256].
  ///
  /// `cell_threads` > 1 widens the per-cell budget: each extra domain engine
  /// carries its own event heap, closure slab and packet-log shard
  /// (kDomainBudgetBytes apiece), so `jobs x cell_threads` oversubscription
  /// is charged for, not ignored.
  static int memory_jobs_cap(int cell_threads = 1);

  /// Per-extra-domain memory charge under --cell-threads (heap + closures +
  /// stats shard of one secondary engine; small next to the cell's pool and
  /// router buffers, which stay shared across domains).
  static constexpr std::uint64_t kDomainBudgetBytes = 16ull << 20;  // 16 MiB

  /// min(hardware_concurrency / cell_threads, memory_jobs_cap(cell_threads)),
  /// at least 1: the worker count that keeps jobs x cell_threads at or below
  /// the machine's cores and memory.
  static int hardware_jobs(int cell_threads = 1);

  /// Invoke fn(0) .. fn(n-1), sharded across jobs() worker threads
  /// (sequential when jobs() == 1 or n <= 1). `fn` must only touch state
  /// owned by cell i — see the thread-safety notes on PacketPool, LinkStats
  /// and Rng.
  ///
  /// Exception handling comes in two modes:
  ///  - errors == nullptr (legacy): the first failure stops workers from
  ///    claiming new cells, and the first exception is rethrown on the
  ///    calling thread after all workers drain; cells not yet started are
  ///    skipped. Every exception is still *counted* per worker internally.
  ///  - errors != nullptr: nothing is rethrown and no early stop happens —
  ///    every cell is attempted, each worker's failure count and first
  ///    message land in *errors (resized to the worker count). Callers that
  ///    isolate failures per cell (run_plan) catch inside fn themselves, so
  ///    entries here indicate infrastructure failures, not cell failures.
  ///
  /// Each worker carries a persistent SimArena (core/arena.hpp) for the
  /// duration of the call, so Studies built inside `fn` reuse the worker's
  /// grown storage cell after cell; and all workers share one BlueprintCache
  /// (core/blueprint.hpp), so same-shape cells read one immutable
  /// topology/wiring/routing plan instead of rebuilding it. Disabled by
  /// --no-arena / DFSIM_NO_ARENA and --no-blueprint / DFSIM_NO_BLUEPRINT
  /// respectively; output is bit-identical in every combination.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn,
                   WorkerErrors* errors = nullptr) const;

  /// Evaluate every task; results are returned in task order, so callers
  /// print deterministic tables no matter how the cells interleave.
  template <typename T>
  std::vector<T> map(const std::vector<std::function<T()>>& tasks) const {
    std::vector<T> results(tasks.size());
    run_indexed(tasks.size(), [&](std::size_t i) { results[i] = tasks[i](); });
    return results;
  }

 private:
  int jobs_;
};

class BlueprintCache;

/// Persistent worker pool with a FIFO submission queue — the daemon-mode
/// (`dflysim --serve`) counterpart of ParallelRunner.
///
/// A ParallelRunner spins its workers up per call, so each campaign starts
/// with cold arenas and an empty BlueprintCache. A SubmissionQueue instead
/// keeps one process-wide pool alive for its whole lifetime: every worker
/// binds a persistent SimArena once, all workers share ONE BlueprintCache,
/// and independent run_indexed() calls — one per campaign, possibly from
/// many threads at once — multiplex their cells onto the same warm workers.
/// The second campaign of a given shape therefore starts with hot storage
/// and a prebuilt blueprint instead of paying setup cost again.
///
/// Scheduling is FIFO across submissions and index-ordered within one:
/// workers drain the oldest submission's unclaimed cells first, so an
/// earlier campaign is never starved by a later one. Cell -> worker
/// assignment is as output-neutral as in ParallelRunner (arena reuse and
/// blueprint sharing never change bytes), so results are identical to a
/// private run.
class SubmissionQueue {
 public:
  /// `jobs` resolves exactly like ParallelRunner: > 0 exact, else
  /// DFSIM_JOBS, else `fallback` workers. Workers start immediately and run
  /// until destruction.
  explicit SubmissionQueue(int jobs = 0, int fallback = 1);
  /// Drains nothing: callers must not destroy the queue while a
  /// run_indexed() call is in flight. Joins all workers.
  ~SubmissionQueue();
  SubmissionQueue(const SubmissionQueue&) = delete;
  SubmissionQueue& operator=(const SubmissionQueue&) = delete;

  int jobs() const { return jobs_; }

  /// The pool-wide blueprint cache every worker reads through; its stats
  /// prove cross-campaign sharing (the daemon's `stats` op reports them).
  BlueprintCache& cache() { return *cache_; }

  /// Invoke fn(0) .. fn(n-1) on the pool and block until every call
  /// finished. Thread-safe: concurrent calls queue FIFO and interleave on
  /// the shared workers. Exception semantics match ParallelRunner's collect
  /// mode — nothing is rethrown, every cell is attempted, and per-worker
  /// failure diagnostics land in *errors when provided (entries are indexed
  /// by pool worker id).
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn,
                   WorkerErrors* errors = nullptr);

 private:
  /// One run_indexed() call in flight. Every field is written under the
  /// queue-wide mutex_ (a nested struct cannot name the enclosing member in
  /// GUARDED_BY, so the discipline is enforced at the SubmissionQueue level:
  /// batches are only reachable through pending_, which is guarded).
  struct Batch {
    std::size_t n{0};
    const std::function<void(std::size_t)>* fn{nullptr};
    std::size_t next{0};       ///< first unclaimed index
    std::size_t remaining{0};  ///< cells not yet finished
    WorkerErrors errors;       ///< per pool worker, guarded by queue mutex
    std::condition_variable done_cv;
  };

  void worker_main(std::size_t id);

  int jobs_;
  std::unique_ptr<BlueprintCache> cache_;
  Mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<Batch*> pending_ GUARDED_BY(mutex_);  ///< unclaimed batches, FIFO
  bool stopping_ GUARDED_BY(mutex_){false};
  std::vector<std::thread> workers_;
};

}  // namespace dfly

#include "sim/log.hpp"

#include <cstdarg>
#include <cstdio>

namespace dfly {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void vlog(LogLevel level, const char* fmt, ...) {
  if (level > g_level) return;
  std::fprintf(stderr, "[dfly %s] ", level_name(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}
}  // namespace detail

}  // namespace dfly

#pragma once

#include "sim/time.hpp"

/// End-to-end congestion control (ECN marking + source throttling).
///
/// The paper's related work (§II-C) cites congestion control as the heavier
/// alternative to routing-based interference mitigation: "when congestion
/// happens, the message generation rate is throttled to drain the network"
/// (De Sensi et al. SC'20 on Slingshot; McGlohon et al. PMBS'21 through
/// simulation). This module implements that mechanism so benches can compare
/// throttling against adaptive/Q-adaptive routing on identical workloads:
///
///  - routers mark packets (ECN) when the chosen output port's occupancy —
///    queued packets plus downstream slots in flight — exceeds a threshold;
///  - the destination NIC reflects each mark back to the source as a small
///    congestion notification after an unloaded-path return delay (the
///    notification itself is modelled as contention-free, like dedicated
///    control-plane bandwidth);
///  - the source NIC paces injection at `rate x link speed`, applying
///    multiplicative decrease per notification and additive increase on a
///    timer (AIMD), with a floor so flows never fully stall.
namespace dfly {

struct CongestionControlConfig {
  bool enabled{false};
  /// Mark when the output port's occupancy (packets queued here + credits
  /// in flight downstream) is at least this many packets. The default sits
  /// at 2/3 of the 30-packet paper buffer.
  int ecn_threshold_packets{20};
  /// Multiplicative decrease applied per received notification.
  double md_factor{0.5};
  /// Additive increase step applied every `ai_period` while throttled.
  double ai_step{0.05};
  SimTime ai_period{5 * kUs};
  /// Injection-rate floor (fraction of link rate).
  double min_rate{0.05};
  /// Ignore further notifications for this long after a decrease, so one
  /// congestion episode does not trigger a cascade of cuts (per-source
  /// reaction time, like RoCE CNP coalescing).
  SimTime decrease_guard{2 * kUs};

  /// Shape identity (used by the SystemBlueprint cache key).
  bool operator==(const CongestionControlConfig&) const = default;
};

}  // namespace dfly

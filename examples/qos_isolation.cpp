// QoS isolation: protect a latency-sensitive job from a bandwidth hog with
// weighted traffic classes instead of (or on top of) intelligent routing.
//
//   $ ./qos_isolation [victim_weight aggressor_weight]   (default 4 1)
//
// Demonstrates:
//   - NetConfig::qos — deficit-weighted round-robin arbitration classes,
//   - Study::set_traffic_class — assigning applications to classes,
//   - reading per-application outcomes from the Report.

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/study.hpp"
#include "workloads/motifs.hpp"
#include "workloads/synthetic.hpp"

int main(int argc, char** argv) {
  const int victim_weight = argc > 1 ? std::atoi(argv[1]) : 4;
  const int aggressor_weight = argc > 2 ? std::atoi(argv[2]) : 1;

  auto run = [&](bool qos_on) {
    dfly::StudyConfig config;
    config.topo = dfly::DragonflyParams{4, 8, 4, 9};  // 288-node demo system
    config.routing = "MIN";  // no adaptive escape: contention is settled by arbitration
    config.seed = 7;
    if (qos_on) {
      config.net.qos.num_classes = 2;
      config.net.qos.weights = {victim_weight, aggressor_weight};
    }
    dfly::Study study(config);

    // Victim: bandwidth-bound bisection exchange — every message crosses
    // the machine's halves, competing with the flood on the global links.
    dfly::workloads::BisectionParams victim_params;
    victim_params.iterations = 20;
    victim_params.msg_bytes = 65536;
    const int victim = study.add_motif(
        std::make_unique<dfly::workloads::BisectionMotif>(victim_params), 96, "Victim");

    // Aggressor: full-rate uniform-random flood.
    dfly::workloads::UniformRandomParams aggressor_params;
    aggressor_params.iterations = 2500;
    aggressor_params.msg_bytes = 4096;
    aggressor_params.interval = 0;
    const int aggressor = study.add_motif(
        std::make_unique<dfly::workloads::UniformRandomMotif>(aggressor_params), 192,
        "Aggressor");

    study.set_traffic_class(victim, 0);
    study.set_traffic_class(aggressor, 1);
    const dfly::Report report = study.run();
    std::printf("%-14s victim comm %7.3f ms (p99 %7.2f us) | aggressor comm %7.3f ms\n",
                qos_on ? "QoS on:" : "QoS off:",
                report.apps[static_cast<std::size_t>(victim)].comm_mean_ms,
                report.apps[static_cast<std::size_t>(victim)].lat_p99_us,
                report.apps[static_cast<std::size_t>(aggressor)].comm_mean_ms);
    return report.completed;
  };

  std::printf("Weighted traffic classes, victim:aggressor = %d:%d (MIN routing)\n\n",
              victim_weight, aggressor_weight);
  const bool ok = run(false) && run(true);
  std::printf("\nThe victim's communication time and tail latency shrink under QoS;\n"
              "the aggressor pays, because arbitration now divides contended links\n"
              "%d:%d instead of first-come-first-served.\n",
              victim_weight, aggressor_weight);
  return ok ? 0 : 1;
}

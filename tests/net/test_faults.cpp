#include "net/fault.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/study.hpp"
#include "net/network.hpp"
#include "routing/factory.hpp"
#include "../support/make_blueprint.hpp"
#include "workloads/motifs.hpp"
#include "workloads/synthetic.hpp"

namespace dfly {
namespace {

// --- FaultPlan construction --------------------------------------------------

TEST(FaultPlan, ParseSingleEntry) {
  const FaultPlan plan = parse_fault_plan("12:11:8");
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.faults()[0].router, 12);
  EXPECT_EQ(plan.faults()[0].port, 11);
  EXPECT_EQ(plan.faults()[0].slowdown, 8);
  EXPECT_EQ(plan.faults()[0].extra_latency, 0);
}

TEST(FaultPlan, ParseEntryWithExtraLatency) {
  const FaultPlan plan = parse_fault_plan("0:14:4:500");
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.faults()[0].extra_latency, 500 * kNs);
}

TEST(FaultPlan, ParseMultipleEntries) {
  const FaultPlan plan = parse_fault_plan("0:14:4:500,8:12:2");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.faults()[1].router, 8);
  EXPECT_EQ(plan.faults()[1].slowdown, 2);
}

TEST(FaultPlan, ParseEmptyStringIsEmptyPlan) {
  EXPECT_TRUE(parse_fault_plan("").empty());
}

TEST(FaultPlan, ParseRejectsMalformedEntries) {
  EXPECT_THROW(parse_fault_plan("12"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("12:3"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("12:3:0"), std::invalid_argument);   // slowdown < 1
  EXPECT_THROW(parse_fault_plan("a:3:2"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("1:2:3:4:5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("1:2:3x"), std::invalid_argument);
}

TEST(FaultPlan, DegradeGlobalCoversBothDirections) {
  const Dragonfly topo(DragonflyParams::tiny());
  const FaultPlan plan = FaultPlan::degrade_global(topo, 0, 1, 4);
  // tiny(): g = a*h + 1, exactly one link per group pair -> two directions.
  ASSERT_EQ(plan.size(), 2u);
  for (const LinkFault& fault : plan.faults()) {
    EXPECT_TRUE(topo.is_global_port(fault.port));
    EXPECT_EQ(fault.slowdown, 4);
    const int group = topo.group_of_router(fault.router);
    EXPECT_TRUE(group == 0 || group == 1);
    // The degraded port must be the one wired toward the other group.
    const int k = fault.port - topo.first_global_port();
    EXPECT_EQ(topo.group_reached_by(fault.router, k), group == 0 ? 1 : 0);
  }
}

TEST(FaultPlan, DegradeGlobalRejectsSameGroup) {
  const Dragonfly topo(DragonflyParams::tiny());
  EXPECT_THROW(FaultPlan::degrade_global(topo, 2, 2, 4), std::invalid_argument);
}

TEST(FaultPlan, DegradeRouterLocalsCoversAllLocalPorts) {
  const Dragonfly topo(DragonflyParams::tiny());
  const FaultPlan plan = FaultPlan::degrade_router_locals(topo, 5, 2);
  ASSERT_EQ(plan.size(), static_cast<std::size_t>(topo.params().a - 1));
  for (const LinkFault& fault : plan.faults()) {
    EXPECT_EQ(fault.router, 5);
    EXPECT_TRUE(topo.is_local_port(fault.port));
  }
}

TEST(FaultPlan, DegradeRandomGlobalsFractionBounds) {
  const Dragonfly topo(DragonflyParams::tiny());
  EXPECT_TRUE(FaultPlan::degrade_random_globals(topo, 0.0, 4, 0, 7).empty());
  const std::size_t total =
      static_cast<std::size_t>(topo.num_routers()) * static_cast<std::size_t>(topo.params().h);
  EXPECT_EQ(FaultPlan::degrade_random_globals(topo, 1.0, 4, 0, 7).size(), total);
  const FaultPlan half = FaultPlan::degrade_random_globals(topo, 0.5, 4, 0, 7);
  EXPECT_GT(half.size(), total / 4);
  EXPECT_LT(half.size(), 3 * total / 4);
  EXPECT_THROW(FaultPlan::degrade_random_globals(topo, 1.5, 4, 0, 7), std::invalid_argument);
}

TEST(FaultPlan, DegradeRandomGlobalsIsDeterministic) {
  const Dragonfly topo(DragonflyParams::tiny());
  const FaultPlan a = FaultPlan::degrade_random_globals(topo, 0.3, 4, 0, 11);
  const FaultPlan b = FaultPlan::degrade_random_globals(topo, 0.3, 4, 0, 11);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.faults()[i].router, b.faults()[i].router);
    EXPECT_EQ(a.faults()[i].port, b.faults()[i].port);
  }
}

TEST(FaultPlan, MergeConcatenates) {
  FaultPlan a = parse_fault_plan("1:2:3");
  a.merge(parse_fault_plan("4:5:6"));
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.faults()[1].router, 4);
}

// --- Router / Network behaviour ----------------------------------------------

class SinkRecorder final : public MessageEvents {
 public:
  void message_sent(std::uint64_t) override {}
  void message_delivered(std::uint64_t) override { delivered++; }
  int delivered{0};
};

struct FaultNetFixture {
  explicit FaultNetFixture(const std::string& routing_name = "MIN")
      : bp(testsupport::make_blueprint()), topo(&bp->topo()) {
    routing::RoutingContext context{&engine, topo, &bp->net(), 1};
    routing = routing::make_routing(routing_name, context);
    NetworkObservability obs;
    obs.keep_packet_records = true;
    net = std::make_unique<Network>(engine, *bp, *routing, /*num_apps=*/1, 1, obs);
    net->set_sink(sink);
  }

  Engine engine;
  std::shared_ptr<const SystemBlueprint> bp;
  const Dragonfly* topo;
  std::unique_ptr<RoutingAlgorithm> routing;
  std::unique_ptr<Network> net;
  SinkRecorder sink;
};

TEST(FaultInjection, RouterRejectsBadArguments) {
  FaultNetFixture f;
  EXPECT_THROW(f.net->router(0).degrade_port(-1, 2, 0), std::out_of_range);
  EXPECT_THROW(f.net->router(0).degrade_port(f.topo->radix(), 2, 0), std::out_of_range);
  EXPECT_THROW(f.net->router(0).degrade_port(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(f.net->router(0).degrade_port(0, 2, -1), std::invalid_argument);
}

TEST(FaultInjection, ApplyFaultsRejectsUnknownRouter) {
  FaultNetFixture f;
  FaultPlan plan;
  plan.add(LinkFault{f.topo->num_routers(), 0, 2, 0});
  EXPECT_THROW(f.net->apply_faults(plan), std::out_of_range);
}

TEST(FaultInjection, ApplyFaultsSetsRouterPortState) {
  FaultNetFixture f;
  FaultPlan plan;
  plan.add(LinkFault{3, f.topo->first_local_port(), 4, 250 * kNs});
  f.net->apply_faults(plan);
  EXPECT_EQ(f.net->router(3).port_slowdown(f.topo->first_local_port()), 4);
  EXPECT_EQ(f.net->router(3).port_extra_latency(f.topo->first_local_port()), 250 * kNs);
  // Other ports untouched.
  EXPECT_EQ(f.net->router(3).port_slowdown(0), 1);
}

/// Packet latency across a degraded wire grows by the extra propagation
/// latency exactly (single packet: no queueing involved).
TEST(FaultInjection, ExtraLatencyShiftsUnloadedDelivery) {
  const int src = 0;
  // Destination on router 1, same group: route is terminal->R0->local->R1.
  const int dst_base = [] {
    Dragonfly topo(DragonflyParams::tiny());
    return topo.params().p;
  }();

  auto run_once = [&](SimTime extra) {
    FaultNetFixture f;
    if (extra > 0) {
      FaultPlan plan;
      plan.add(LinkFault{0, f.topo->local_port_to(0, 1), 1, extra});
      f.net->apply_faults(plan);
    }
    f.net->send_message(src, dst_base, 512, 0);
    f.engine.run();
    const auto& records = f.net->packet_log().records();
    EXPECT_EQ(records.size(), 1u);
    return records.empty() ? SimTime{0} : records[0].eject_time - records[0].wire_time;
  };

  const SimTime base = run_once(0);
  const SimTime degraded = run_once(2 * kUs);
  EXPECT_EQ(degraded - base, 2 * kUs);
}

/// A slowdown-k wire serialises k times slower, so a long stream through it
/// takes ~k times longer to drain (bandwidth-bound regime).
TEST(FaultInjection, SlowdownScalesStreamDrainTime) {
  auto drain_time = [&](int slowdown) {
    FaultNetFixture f;
    if (slowdown > 1) {
      FaultPlan plan;
      plan.add(LinkFault{0, f.topo->local_port_to(0, 1), slowdown, 0});
      f.net->apply_faults(plan);
    }
    // 256 packets node0 -> node on router 1 through the degraded local wire.
    f.net->send_message(0, f.topo->params().p, 256 * 512, 0);
    f.engine.run();
    EXPECT_EQ(f.sink.delivered, 1);
    return f.engine.now();
  };

  const double base = static_cast<double>(drain_time(1));
  const double slow4 = static_cast<double>(drain_time(4));
  // Serialisation dominates a 256-packet stream; expect ~4x within 40%.
  EXPECT_GT(slow4 / base, 2.4);
  EXPECT_LT(slow4 / base, 5.0);
}

/// Degrading a wire that traffic never crosses changes nothing (and the
/// simulation stays deterministic).
TEST(FaultInjection, UnusedFaultIsInert) {
  auto run_once = [&](bool fault) {
    FaultNetFixture f;
    if (fault) {
      // Degrade a global port of the last router; traffic stays in group 0.
      FaultPlan plan;
      plan.add(LinkFault{f.topo->num_routers() - 1, f.topo->first_global_port(), 16, kMs});
      f.net->apply_faults(plan);
    }
    f.net->send_message(0, f.topo->params().p, 64 * 512, 0);
    f.engine.run();
    return f.engine.now();
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

// --- Study-level integration ---------------------------------------------------

/// Q-adaptive learns delivery-time estimates, so it steers around a degraded
/// gateway that minimal routing is forced to cross. Compare mean packet
/// latency for traffic between two groups whose direct global link is slow.
TEST(FaultInjection, QAdaptiveRoutesAroundDegradedGlobalLink) {
  auto comm_time = [&](const std::string& routing) {
    StudyConfig config;
    config.topo = DragonflyParams::tiny();
    config.routing = routing;
    config.seed = 5;
    config.placement = PlacementPolicy::kLinear;
    {
      const Dragonfly topo(config.topo);
      // All traffic will flow group 0 <-> group 1; degrade that link hard.
      config.faults = FaultPlan::degrade_global(topo, 0, 1, 16);
    }
    Study study(config);
    // Linear placement: ranks 0..7 in group 0, 8..15 in group 1 (p=2, a=4).
    workloads::BisectionParams params;
    params.msg_bytes = 4096;
    params.iterations = 40;
    study.add_motif(std::make_unique<workloads::BisectionMotif>(params), 16, "bisect");
    const Report report = study.run();
    EXPECT_TRUE(report.completed);
    return report.apps[0].comm_mean_ms;
  };

  const double min_time = comm_time("MIN");
  const double qadp_time = comm_time("Q-adp");
  // MIN must cross the degraded wire; Q-adaptive detours via healthy groups.
  EXPECT_LT(qadp_time, min_time * 0.8);
}

/// StudyConfig::faults is applied before traffic: a degraded-everything plan
/// visibly slows the same workload.
TEST(FaultInjection, StudyFaultsSlowDownWorkload) {
  auto makespan = [&](int slowdown) {
    StudyConfig config;
    config.topo = DragonflyParams::tiny();
    config.routing = "UGALg";
    config.seed = 3;
    if (slowdown > 1) {
      const Dragonfly topo(config.topo);
      config.faults = FaultPlan::degrade_random_globals(topo, 1.0, slowdown, 0, 1);
    }
    Study study(config);
    workloads::UniformRandomParams params;
    params.iterations = 30;
    params.window = 8;
    params.interval = 0;
    study.add_motif(std::make_unique<workloads::UniformRandomMotif>(params),
                    config.topo.num_nodes(), "UR");
    const Report report = study.run();
    EXPECT_TRUE(report.completed);
    return report.makespan;
  };
  EXPECT_GT(makespan(8), makespan(1));
}

}  // namespace
}  // namespace dfly
